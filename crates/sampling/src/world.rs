//! Possible-world sampling.
//!
//! "Doing this for each object o ∈ D yields a (certain) trajectory database,
//! on which exact NN-queries can be answered using previous work"
//! (Section 5.2.3). A [`WorldSampler`] holds the adapted models of all objects
//! relevant to a query (candidates plus influence objects after pruning) and
//! draws complete possible worlds; objects are sampled independently, matching
//! the paper's object-independence assumption.

use crate::posterior::PosteriorSampler;
use rand::Rng;
use std::sync::Arc;
use ust_markov::AdaptedModel;
use ust_trajectory::{ObjectId, Trajectory};

/// One sampled possible world: a certain trajectory per object.
#[derive(Debug, Clone)]
pub struct PossibleWorld {
    trajectories: Vec<(ObjectId, Trajectory)>,
}

impl PossibleWorld {
    /// Creates a world with no objects, to be filled by
    /// [`WorldSampler::sample_world_into`].
    pub fn empty() -> Self {
        PossibleWorld { trajectories: Vec::new() }
    }

    /// The sampled trajectories, in the sampler's object order.
    pub fn trajectories(&self) -> &[(ObjectId, Trajectory)] {
        &self.trajectories
    }

    /// View as `(id, &Trajectory)` pairs.
    ///
    /// The certain-world NN primitives in `ust-trajectory` are generic over
    /// `Borrow<Trajectory>`, so [`PossibleWorld::trajectories`] can be handed
    /// to them directly; this allocating view only remains for callers that
    /// need to mix trajectories from several worlds into one slice.
    pub fn as_refs(&self) -> Vec<(ObjectId, &Trajectory)> {
        self.trajectories.iter().map(|(id, tr)| (*id, tr)).collect()
    }

    /// The trajectory of a specific object, if it is part of this world.
    pub fn trajectory_of(&self, id: ObjectId) -> Option<&Trajectory> {
        self.trajectories.iter().find(|(oid, _)| *oid == id).map(|(_, tr)| tr)
    }

    /// Number of objects in the world.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Whether the world contains no objects.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }
}

/// Draws possible worlds from the adapted models of a set of objects.
#[derive(Debug, Clone, Default)]
pub struct WorldSampler {
    models: Vec<(ObjectId, Arc<AdaptedModel>)>,
}

impl WorldSampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        WorldSampler { models: Vec::new() }
    }

    /// Creates a sampler over the given adapted models.
    pub fn from_models(models: Vec<(ObjectId, Arc<AdaptedModel>)>) -> Self {
        WorldSampler { models }
    }

    /// Adds an object.
    pub fn push(&mut self, id: ObjectId, model: Arc<AdaptedModel>) {
        self.models.push((id, model));
    }

    /// The objects this sampler covers.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.models.iter().map(|(id, _)| *id)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the sampler has no objects.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The adapted model of an object.
    pub fn model_of(&self, id: ObjectId) -> Option<&Arc<AdaptedModel>> {
        self.models.iter().find(|(oid, _)| *oid == id).map(|(_, m)| m)
    }

    /// The `(object, adapted model)` pairs in sampler order — the object
    /// order every world is sampled in. [`crate::block::WorldBlock`] snapshots
    /// this to lay out its per-object arenas.
    pub fn models(&self) -> &[(ObjectId, Arc<AdaptedModel>)] {
        &self.models
    }

    /// Draws one possible world (each object sampled independently).
    pub fn sample_world<R: Rng>(&self, rng: &mut R) -> PossibleWorld {
        let trajectories = self
            .models
            .iter()
            .map(|(id, model)| (*id, PosteriorSampler::new(model).sample(rng)))
            .collect();
        PossibleWorld { trajectories }
    }

    /// Draws `n` independent possible worlds.
    pub fn sample_worlds<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<PossibleWorld> {
        (0..n).map(|_| self.sample_world(rng)).collect()
    }

    /// Draws one possible world *into* an existing buffer, reusing each
    /// trajectory's state allocation across draws. Consumes the RNG exactly
    /// like [`sample_world`](Self::sample_world), so a Monte-Carlo loop that
    /// switches to this method observes bit-identical worlds — the engine's
    /// hot loop used to pay one trajectory allocation per object per world.
    pub fn sample_world_into<R: Rng>(&self, rng: &mut R, world: &mut PossibleWorld) {
        self.sample_world_prefix_into(rng, world, u32::MAX);
    }

    /// Like [`sample_world_into`](Self::sample_world_into), but only the
    /// trajectory prefixes up to `horizon` are materialised
    /// ([`PosteriorSampler::sample_prefix_into`]). RNG consumption — and
    /// hence every sampled state at timestamps `≤ horizon` — is bit-identical
    /// to the full draw; the walk tails past the horizon only burn their RNG
    /// draws. This is the query engine's hot call: its NN evaluation never
    /// reads states after the last query timestamp.
    pub fn sample_world_prefix_into<R: Rng>(
        &self,
        rng: &mut R,
        world: &mut PossibleWorld,
        horizon: u32,
    ) {
        world.trajectories.truncate(self.models.len());
        for (i, (id, model)) in self.models.iter().enumerate() {
            let sampler = PosteriorSampler::new(model);
            match world.trajectories.get_mut(i) {
                Some((slot_id, trajectory)) => {
                    *slot_id = *id;
                    sampler.sample_prefix_into(rng, trajectory, horizon);
                }
                None => {
                    let mut trajectory = Trajectory::new(model.start(), vec![0]);
                    sampler.sample_prefix_into(rng, &mut trajectory, horizon);
                    world.trajectories.push((*id, trajectory));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ust_markov::{CsrMatrix, MarkovModel};

    fn two_object_sampler() -> WorldSampler {
        // Figure 1: o1 over states {s1..s4} = {0..3}, o2 over the same space.
        let model = MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(1, 0.5), (3, 0.5)],
        ]));
        let o1 = Arc::new(AdaptedModel::build(&model, &[(1, 1)]).unwrap());
        let o2 = Arc::new(AdaptedModel::build(&model, &[(1, 2), (3, 0)]).unwrap());
        WorldSampler::from_models(vec![(1, o1), (2, o2)])
    }

    #[test]
    fn worlds_contain_every_object_with_consistent_trajectories() {
        let sampler = two_object_sampler();
        let mut rng = StdRng::seed_from_u64(0);
        for world in sampler.sample_worlds(50, &mut rng) {
            assert_eq!(world.len(), 2);
            assert!(!world.is_empty());
            let t1 = world.trajectory_of(1).unwrap();
            let t2 = world.trajectory_of(2).unwrap();
            assert!(t1.consistent_with(sampler.model_of(1).unwrap().observations()));
            assert!(t2.consistent_with(sampler.model_of(2).unwrap().observations()));
            assert!(world.trajectory_of(3).is_none());
        }
    }

    #[test]
    fn as_refs_preserves_order_and_ids() {
        let sampler = two_object_sampler();
        let mut rng = StdRng::seed_from_u64(1);
        let world = sampler.sample_world(&mut rng);
        let refs = world.as_refs();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0].0, 1);
        assert_eq!(refs[1].0, 2);
    }

    #[test]
    fn sample_world_into_is_bit_identical_to_sample_world() {
        let sampler = two_object_sampler();
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        let mut reused = PossibleWorld::empty();
        for _ in 0..40 {
            let fresh = sampler.sample_world(&mut rng_a);
            sampler.sample_world_into(&mut rng_b, &mut reused);
            assert_eq!(fresh.trajectories(), reused.trajectories());
        }
    }

    #[test]
    fn empty_sampler_yields_empty_worlds() {
        let sampler = WorldSampler::new();
        let mut rng = StdRng::seed_from_u64(2);
        let world = sampler.sample_world(&mut rng);
        assert!(world.is_empty());
        assert_eq!(sampler.len(), 0);
        assert!(sampler.is_empty());
    }

    #[test]
    fn push_and_lookup() {
        let mut sampler = WorldSampler::new();
        let model = MarkovModel::homogeneous(CsrMatrix::identity(2));
        let adapted = Arc::new(AdaptedModel::build(&model, &[(0, 1), (2, 1)]).unwrap());
        sampler.push(7, adapted);
        assert_eq!(sampler.len(), 1);
        assert_eq!(sampler.object_ids().collect::<Vec<_>>(), vec![7]);
        assert!(sampler.model_of(7).is_some());
        assert!(sampler.model_of(8).is_none());
    }
}
