//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! The workspace's `benches/` targets are written against the real criterion
//! API (`benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `criterion_group!`, `criterion_main!`). This shim keeps them compiling and
//! runnable offline:
//!
//! * every benchmark routine is warmed up once, then timed for a fixed small
//!   wall-clock budget (or a maximum iteration count, whichever comes first),
//! * mean time per iteration is printed as a single line per benchmark,
//! * no statistics, plots, or baseline comparison are produced.
//!
//! The numbers are honest wall-clock means but lack criterion's outlier
//! rejection — treat them as indicative, not publishable. Swapping in the
//! real criterion later requires no source changes in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Wall-clock budget spent measuring one benchmark (after one warm-up run).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Hard cap on measured iterations per benchmark.
const MAX_ITERS: u64 = 1000;

/// Prevents the optimizer from eliding a value, mirroring
/// `criterion::black_box`. Uses the stable `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. The shim runs one setup per
/// measured iteration regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to set up; batch many per allocation.
    SmallInput,
    /// Inputs are expensive to set up; batch few.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Entry point handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        BenchmarkGroup { _criterion: self, name }
    }

    /// Registers a benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one("", &id.into(), f);
        self
    }
}

/// A named group of benchmarks, created by [`Criterion::benchmark_group`].
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed time budget makes the
    /// requested sample count moot.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark routine and prints its mean iteration time.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&self.name, &id.into(), f);
        self
    }

    /// Ends the group. (No-op; present for API compatibility.)
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { measured: Duration::ZERO, iterations: 0 };
    f(&mut bencher);
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if bencher.iterations == 0 {
        eprintln!("  {label}: no iterations recorded");
    } else {
        let mean = bencher.measured.as_secs_f64() / bencher.iterations as f64;
        eprintln!(
            "  {label}: {:.3} ms/iter (n = {})",
            mean * 1e3,
            bencher.iterations
        );
    }
}

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    measured: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement budget is exhausted.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up, untimed
        let started = Instant::now();
        while self.iterations < MAX_ITERS && started.elapsed() < MEASURE_BUDGET {
            let t0 = Instant::now();
            black_box(routine());
            self.measured += t0.elapsed();
            self.iterations += 1;
        }
    }

    /// Times `routine` over inputs produced by `setup`; only the routine is
    /// measured, never the setup.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up, untimed
        let started = Instant::now();
        while self.iterations < MAX_ITERS && started.elapsed() < MEASURE_BUDGET {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.measured += t0.elapsed();
            self.iterations += 1;
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function, mirroring `criterion_main!`.
///
/// The generated `main` ignores harness-style CLI arguments (`--bench`,
/// `--test`, filters) that `cargo bench`/`cargo test` may pass.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; a `--test`-mode
            // invocation only needs to prove the benchmarks run, which the
            // shim's short budget already keeps cheap.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut count = 0u64;
        group.sample_size(10).bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
