//! Chaos suite (DESIGN.md §8): every registered fault point is armed and
//! fired against the full stack, and the outcome must always be one of
//!
//! * a **typed error** (`StoreError::Io`, a trailing `LoadErrorKind::Io` row,
//!   a propagated worker panic caught at the test boundary), or
//! * a **clean absorbed result** (bounded retries swallow the injected
//!   `Interrupted`), never a hang, and never a poisoned cache or index —
//!
//! and after disarming, the *same* engine (or a rebuild over the same data)
//! must answer exactly like one that never saw a fault.
//!
//! The fault registry is process-global, so every test serialises on
//! [`chaos_lock`]. The per-point drivers are matched by name with a
//! `panic!("unknown fault point")` fallback: registering a new point in any
//! crate's `FAULT_POINTS` catalog fails this suite until a driver exists.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use ust_core::{EngineConfig, EngineStore, Query, QueryEngine};
use ust_fault::{fired, hits, FaultPlan};
use ust_markov::{CsrMatrix, MarkovModel, StateId};
use ust_persist::{read_store, write_store, StoreContents, StoreError};
use ust_spatial::{Point, StateSpace};
use ust_trajectory::{Observation, TrajectoryDatabase, UncertainObject};

/// Serialises the chaos tests: exactly one fault plan is armed at a time.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A panic inside `catch_unwind` never poisons this guard, but be robust
    // against an assertion failing while held.
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Gap between the two observations pinning every object.
const GAP: u32 = 6;

/// The ring-walk fixture of the core test suites, small enough that every
/// clean run completes in milliseconds.
fn ring_db(num_states: usize, num_objects: u32) -> TrajectoryDatabase {
    let points: Vec<Point> = (0..num_states)
        .map(|i| {
            let a = (i as f64) / (num_states as f64) * std::f64::consts::TAU;
            Point::new(a.cos(), a.sin())
        })
        .collect();
    let space = Arc::new(StateSpace::from_points(points));
    let rows: Vec<Vec<(StateId, f64)>> = (0..num_states)
        .map(|i| {
            let fwd = ((i + 1) % num_states) as StateId;
            let bwd = ((i + num_states - 1) % num_states) as StateId;
            vec![(bwd, 0.25), (i as StateId, 0.5), (fwd, 0.25)]
        })
        .collect();
    let model = Arc::new(MarkovModel::homogeneous(CsrMatrix::from_rows(rows)));
    let objects: Vec<UncertainObject> = (1..=num_objects)
        .map(|id| {
            let start = ((id as usize * 7) % num_states) as StateId;
            let end = ((start as usize + 2) % num_states) as StateId;
            UncertainObject::from_pairs(id, vec![(0, start), (GAP, end)])
                .expect("observations are sorted")
        })
        .collect();
    TrajectoryDatabase::with_objects(space, model, objects)
}

fn ring_query() -> Query {
    Query::at_point(Point::new(1.2, 0.0), 0..=GAP).expect("valid query")
}

/// A per-test temp path under the system temp dir.
fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pnnq-chaos-{}-{tag}", std::process::id()))
}

/// A well-formed four-row T-Drive document (two taxis).
const TDRIVE_CSV: &str = "\
1,2008-02-02 15:36:08,116.51172,39.92123
1,2008-02-02 15:46:08,116.51135,39.93883
2,2008-02-02 15:36:08,116.56444,39.92472
2,2008-02-02 15:46:08,116.57361,39.92619
";

/// How one armed fault point is allowed to surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// The subsystem returned its typed error.
    TypedError,
    /// Bounded retries absorbed the fault; the result is clean.
    Absorbed,
    /// The injected panic propagated (and is caught at the test boundary).
    Panicked,
}

/// Runs the subsystem that owns `point` with the fault already armed and
/// classifies what happened. Every driver also proves the *clean* half of
/// the contract when called with no plan armed (see
/// [`catalog_sweep_fires_every_registered_point`]).
fn drive(point: &str) -> Outcome {
    match point {
        "core.adapt.worker" => {
            let db = ring_db(48, 6);
            let engine = QueryEngine::new(&db, EngineConfig::with_samples(20));
            match catch_unwind(AssertUnwindSafe(|| engine.pforall_nn(&ring_query(), 0.0))) {
                Ok(Ok(_)) => Outcome::Absorbed,
                Ok(Err(_)) => Outcome::TypedError,
                Err(_) => Outcome::Panicked,
            }
        }
        "index.build.shard" => {
            let db = ring_db(48, 6);
            match catch_unwind(AssertUnwindSafe(|| {
                QueryEngine::new(&db, EngineConfig::with_samples(20))
            })) {
                Ok(_) => Outcome::Absorbed,
                Err(_) => Outcome::Panicked,
            }
        }
        "persist.write.file" | "persist.write.interrupted" | "persist.write.sync"
        | "persist.write.rename" => {
            let db = ring_db(32, 4);
            let path = temp_path(&format!("{point}.ustore"));
            let contents = StoreContents { database: &db, index: None, models: &[] };
            let outcome = match write_store(&path, &contents) {
                Ok(_) => {
                    read_store(&path).expect("an absorbed write leaves a valid store behind");
                    Outcome::Absorbed
                }
                Err(StoreError::Io { .. }) => Outcome::TypedError,
                Err(other) => panic!("{point}: expected StoreError::Io, got {other:?}"),
            };
            let _ = std::fs::remove_file(&path);
            outcome
        }
        "persist.read.file" | "persist.read.interrupted" | "persist.read.section" => {
            let db = ring_db(32, 4);
            let path = temp_path(&format!("{point}.ustore"));
            let contents = StoreContents { database: &db, index: None, models: &[] };
            // The armed plan names a read point, so this write runs clean.
            write_store(&path, &contents).expect("writing the fixture store succeeds");
            let outcome = match read_store(&path) {
                Ok(loaded) => {
                    assert_eq!(loaded.database.len(), db.len(), "absorbed read loads everything");
                    Outcome::Absorbed
                }
                Err(StoreError::Io { .. }) => Outcome::TypedError,
                Err(other) => panic!("{point}: expected StoreError::Io, got {other:?}"),
            };
            let _ = std::fs::remove_file(&path);
            outcome
        }
        "persist.wal.append.write" | "persist.wal.append.sync" | "persist.wal.replay.read"
        | "persist.checkpoint.truncate" => {
            let db = ring_db(32, 4);
            let path = temp_path(&format!("{point}.ustore"));
            let wal = ust_persist::wal::wal_path(&path);
            let _ = std::fs::remove_file(&wal);
            let contents = StoreContents { database: &db, index: None, models: &[] };
            // The armed plan names a WAL point, so this write runs clean.
            write_store(&path, &contents).expect("writing the fixture store succeeds");
            let batch = vec![(1u32, vec![Observation::new(GAP + 1, 0), Observation::new(GAP + 3, 1)])];
            // The ingest cycle the point lives in: load (replays the WAL),
            // append a batch, checkpoint it back into the container. The
            // armed fault surfaces from whichever step owns it.
            let cycle = || -> Result<(), StoreError> {
                let mut store = EngineStore::load(&path)?;
                store.append_batch(&batch)?;
                store.checkpoint()?;
                Ok(())
            };
            let outcome = match cycle() {
                Ok(()) => {
                    let reloaded = EngineStore::load(&path).expect("a clean cycle reloads");
                    assert_eq!(
                        reloaded.database().object(1).map(|o| o.last_time()),
                        Some(GAP + 3),
                        "a clean cycle persisted the appended batch"
                    );
                    Outcome::Absorbed
                }
                Err(StoreError::Io { .. }) => Outcome::TypedError,
                Err(other) => panic!("{point}: expected StoreError::Io, got {other:?}"),
            };
            let _ = std::fs::remove_file(&path);
            let _ = std::fs::remove_file(&wal);
            outcome
        }
        "tdrive.open" | "tdrive.read.line" | "tdrive.read.interrupted" => {
            let path = temp_path(&format!("{point}.csv"));
            std::fs::write(&path, TDRIVE_CSV).expect("writing the fixture CSV succeeds");
            let outcome = match ust_generator::tdrive::load_path(&path) {
                Err(_) => Outcome::TypedError,
                Ok(loaded) if loaded.errors.is_empty() => {
                    assert_eq!(loaded.fixes.len(), 4, "absorbed read parses every row");
                    Outcome::Absorbed
                }
                // A mid-stream read error is a typed, line-numbered row; the
                // fixes before it are kept (degraded, not lost).
                Ok(_) => Outcome::TypedError,
            };
            let _ = std::fs::remove_file(&path);
            outcome
        }
        other => panic!("unknown fault point {other:?}: add a chaos driver for it"),
    }
}

/// The expected failure mode per point. The panic points crash, the
/// `*.interrupted` points are absorbed by their bounded retries, everything
/// else is a typed error.
fn expected(point: &str) -> Outcome {
    if point == "core.adapt.worker" || point == "index.build.shard" {
        Outcome::Panicked
    } else if point.ends_with(".interrupted") {
        Outcome::Absorbed
    } else {
        Outcome::TypedError
    }
}

/// Every crate's catalog, in one place.
fn full_catalog() -> Vec<&'static str> {
    let mut all = Vec::new();
    for catalog in [
        ust_core::FAULT_POINTS,
        ust_index::FAULT_POINTS,
        ust_persist::FAULT_POINTS,
        ust_generator::FAULT_POINTS,
    ] {
        assert!(!catalog.is_empty(), "every instrumented crate registers its points");
        all.extend_from_slice(catalog);
    }
    all
}

#[test]
fn catalog_sweep_fires_every_registered_point() {
    let _guard = chaos_lock();
    for point in full_catalog() {
        assert!(
            point.split('.').count() >= 2 && point.is_ascii(),
            "{point:?} breaks the <area>.<operation>[.<failure>] naming convention"
        );
        let armed = FaultPlan::once(point).arm();
        let outcome = drive(point);
        assert_eq!(
            fired(point),
            1,
            "{point}: the armed occurrence must actually be reached and fire"
        );
        assert_eq!(outcome, expected(point), "{point}: wrong failure mode");
        drop(armed);
        // Recovery: with the plan disarmed, the same driver must run clean —
        // no cache slot, claim or on-disk state left poisoned.
        assert_eq!(drive(point), Outcome::Absorbed, "{point}: no clean rerun after the fault");
    }
}

#[test]
fn interrupted_reads_are_absorbed_then_exhausted() {
    let _guard = chaos_lock();
    let db = ring_db(32, 4);
    let path = temp_path("eintr.ustore");
    let contents = StoreContents { database: &db, index: None, models: &[] };
    write_store(&path, &contents).expect("writing the fixture store succeeds");

    // Three interruptions: under the retry bound, absorbed without a trace.
    let armed = FaultPlan::new().with("persist.read.interrupted", 0, 3).arm();
    read_store(&path).expect("three interruptions are absorbed");
    assert_eq!(fired("persist.read.interrupted"), 3);
    drop(armed);

    // More interruptions than MAX_IO_RETRIES: the typed error surfaces
    // instead of looping forever.
    let armed = FaultPlan::new().with("persist.read.interrupted", 0, 1000).arm();
    let err = read_store(&path).expect_err("a signal storm is bounded, not retried forever");
    assert!(matches!(err, StoreError::Io { .. }), "expected StoreError::Io, got {err:?}");
    drop(armed);

    // Same contract on the T-Drive loader, whose exhaustion surfaces as a
    // trailing line-numbered I/O row with the already-parsed rows kept.
    let csv = temp_path("eintr.csv");
    std::fs::write(&csv, TDRIVE_CSV).expect("writing the fixture CSV succeeds");
    let armed = FaultPlan::new().with("tdrive.read.interrupted", 2, 1000).arm();
    let loaded = ust_generator::tdrive::load_path(&csv).expect("the open itself succeeds");
    assert_eq!(loaded.fixes.len(), 2, "rows before the storm are kept");
    assert_eq!(loaded.errors.len(), 1, "the exhausted retry is one typed trailing row");
    drop(armed);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn worker_panic_releases_claims_and_the_engine_recovers() {
    let _guard = chaos_lock();
    let db = ring_db(48, 12);
    for threads in [1usize, 2] {
        let config = EngineConfig::with_samples(20).with_adaptation_threads(threads);
        let engine = QueryEngine::new(&db, config.clone());
        let armed = FaultPlan::once("core.adapt.worker").arm();
        let result = catch_unwind(AssertUnwindSafe(|| engine.pforall_nn(&ring_query(), 0.0)));
        assert!(result.is_err(), "threads={threads}: the injected worker panic propagates");
        drop(armed);
        assert_eq!(
            engine.cache_stats().cached_failures,
            0,
            "threads={threads}: a panicked adaptation must not be cached as a failure"
        );
        // The same engine — panicked claim released — answers exactly like a
        // fresh one over the same data.
        let recovered = engine.pforall_nn(&ring_query(), 0.0).unwrap_or_else(|e| {
            panic!("threads={threads}: the engine answers after the panic: {e:?}")
        });
        let fresh = QueryEngine::new(&db, config)
            .pforall_nn(&ring_query(), 0.0)
            .expect("a fresh engine answers");
        let pairs = |o: &ust_core::QueryOutcome| -> Vec<(u64, u64)> {
            o.results.iter().map(|r| (u64::from(r.object), r.probability.to_bits())).collect()
        };
        assert_eq!(pairs(&recovered), pairs(&fresh), "threads={threads}: answers diverge");
    }
}

#[test]
fn index_build_panic_recovers_on_rebuild() {
    let _guard = chaos_lock();
    let db = ring_db(48, 6);
    let armed = FaultPlan::once("index.build.shard").arm();
    let result = catch_unwind(AssertUnwindSafe(|| {
        QueryEngine::new(&db, EngineConfig::with_samples(20))
    }));
    assert!(result.is_err(), "the injected build panic propagates");
    drop(armed);
    // Nothing survives a failed build: rebuilding over the same database
    // yields a fully working engine.
    let engine = QueryEngine::new(&db, EngineConfig::with_samples(20));
    let outcome = engine.pforall_nn(&ring_query(), 0.0).expect("the rebuilt engine answers");
    assert!(!outcome.results.is_empty() || outcome.stats.candidates == 0);
}

#[test]
fn failed_writes_leave_the_previous_store_intact() {
    let _guard = chaos_lock();
    let db = ring_db(32, 4);
    let path = temp_path("atomic.ustore");
    let contents = StoreContents { database: &db, index: None, models: &[] };

    // Establish a good store via the engine-level save path, then fault
    // every stage of a rewrite: the staged temp-file protocol must never
    // replace (or truncate) the good bytes with a partial write.
    let engine = QueryEngine::new(&db, EngineConfig::with_samples(8));
    engine.save_store(&path).expect("the initial save succeeds");
    let good = std::fs::read(&path).expect("the initial store is readable");
    for point in ["persist.write.file", "persist.write.sync", "persist.write.rename"] {
        let armed = FaultPlan::once(point).arm();
        let err = write_store(&path, &contents).expect_err("the armed write fails");
        assert!(matches!(err, StoreError::Io { .. }), "{point}: expected Io, got {err:?}");
        assert_eq!(fired(point), 1, "{point}: the armed stage fired");
        drop(armed);
        assert_eq!(
            std::fs::read(&path).expect("the store file still exists"),
            good,
            "{point}: a failed rewrite must not disturb the previous store"
        );
        let reloaded = EngineStore::load(&path).expect("the previous store still loads");
        assert_eq!(reloaded.database().len(), db.len());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn seeded_plans_are_deterministic_and_stay_typed() {
    let _guard = chaos_lock();
    let catalog: Vec<&str> = ust_persist::FAULT_POINTS.to_vec();
    let db = ring_db(32, 4);
    let path = temp_path("seeded.ustore");
    let contents = StoreContents { database: &db, index: None, models: &[] };
    for seed in 0..16u64 {
        assert_eq!(
            FaultPlan::seeded(seed, &catalog),
            FaultPlan::seeded(seed, &catalog),
            "seed {seed}: the same seed derives the same plan"
        );
        // The same seeded plan must classify the same way on every run: the
        // store round trip either completes or fails with the typed error,
        // deterministically.
        let mut classes = Vec::new();
        for _ in 0..2 {
            let armed = FaultPlan::seeded(seed, &catalog).arm();
            let class = match write_store(&path, &contents).and_then(|_| read_store(&path)) {
                Ok(_) => "ok",
                Err(StoreError::Io { .. }) => "io",
                Err(other) => panic!("seed {seed}: expected StoreError::Io, got {other:?}"),
            };
            drop(armed);
            classes.push(class);
        }
        assert_eq!(classes[0], classes[1], "seed {seed}: nondeterministic outcome");
        // Whatever the seeded plan did, the disarmed round trip is clean.
        write_store(&path, &contents).expect("clean write after the seeded plan");
        read_store(&path).expect("clean read after the seeded plan");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn disarmed_faults_are_invisible() {
    let _guard = chaos_lock();
    // No plan armed: the fast path must not even count.
    assert_eq!(hits("core.adapt.worker"), 0);
    assert_eq!(ust_fault::inject("persist.read.file"), None);
    let db = ring_db(48, 6);
    let engine = QueryEngine::new(&db, EngineConfig::with_samples(20));
    engine.pforall_nn(&ring_query(), 0.0).expect("the undisturbed stack answers");
    assert_eq!(hits("core.adapt.worker"), 0, "disarmed polls leave no counter behind");
}
