//! Axis-aligned minimum bounding rectangles (MBRs) of constant dimension.
//!
//! The UST-tree (Section 6 of the paper) conservatively approximates the set
//! of possible `(location, time)` pairs of an uncertain object between two
//! observations by minimum bounding rectangles, and prunes database objects
//! with the classic `dmin`/`dmax` distance bounds:
//!
//! * `dmin(o(t), q(t))` — smallest possible distance between any point of the
//!   MBR and the query position,
//! * `dmax(o(t), q(t))` — largest possible distance.
//!
//! [`Rect`] is generic over the dimension so the same type serves both the
//! purely spatial 2-d MBRs (`Rect2`) and the spatio-temporal 3-d boxes
//! (`Rect3`, axes `x`, `y`, `t`) stored in the R*-tree.

use crate::point::Point;

/// An axis-aligned box in `D` dimensions, stored as per-axis `[min, max]`.
///
/// (Rectangles carry no serialisation support of their own; the on-disk
/// store (`ust-persist`) encodes the diamond rectangles it needs as plain
/// min/max coordinate pairs and re-validates `min <= max` and finiteness on
/// load, so this type never has to trust external bytes.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect<const D: usize> {
    /// Per-axis lower bounds.
    pub min: [f64; D],
    /// Per-axis upper bounds.
    pub max: [f64; D],
}

/// A two-dimensional rectangle (purely spatial MBR).
pub type Rect2 = Rect<2>;
/// A three-dimensional box (spatio-temporal MBR: `x`, `y`, `t`).
pub type Rect3 = Rect<3>;

impl<const D: usize> Rect<D> {
    /// Creates a rectangle from lower and upper bounds.
    ///
    /// # Panics
    /// Panics (in debug builds) if any `min[i] > max[i]`.
    #[inline]
    pub fn new(min: [f64; D], max: [f64; D]) -> Self {
        debug_assert!(
            min.iter().zip(max.iter()).all(|(lo, hi)| lo <= hi),
            "invalid rectangle: min {min:?} > max {max:?}"
        );
        Rect { min, max }
    }

    /// A degenerate rectangle covering exactly one point.
    #[inline]
    pub fn point(p: [f64; D]) -> Self {
        Rect { min: p, max: p }
    }

    /// An "empty" rectangle suitable as the neutral element of [`Rect::union`].
    ///
    /// Its bounds are inverted (`+inf`/`-inf`), so the union with any proper
    /// rectangle yields that rectangle. Use [`Rect::is_empty`] to test for it.
    #[inline]
    pub fn empty() -> Self {
        Rect { min: [f64::INFINITY; D], max: [f64::NEG_INFINITY; D] }
    }

    /// Whether this is the empty rectangle produced by [`Rect::empty`].
    #[inline]
    pub fn is_empty(&self) -> bool {
        (0..D).any(|i| self.min[i] > self.max[i])
    }

    /// Extent along axis `i` (zero for the empty rectangle).
    #[inline]
    pub fn extent(&self, i: usize) -> f64 {
        (self.max[i] - self.min[i]).max(0.0)
    }

    /// The product of all extents (hyper-volume). Zero for degenerate boxes.
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|i| self.extent(i)).product()
    }

    /// The sum of all extents (the "margin" used by the R*-tree split
    /// heuristic).
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|i| self.extent(i)).sum()
    }

    /// Center of the rectangle.
    #[inline]
    pub fn center(&self) -> [f64; D] {
        let mut c = [0.0; D];
        for ((c, &lo), &hi) in c.iter_mut().zip(&self.min).zip(&self.max) {
            *c = 0.5 * (lo + hi);
        }
        c
    }

    /// Smallest rectangle containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect<D>) -> Rect<D> {
        let mut min = [0.0; D];
        let mut max = [0.0; D];
        for i in 0..D {
            min[i] = self.min[i].min(other.min[i]);
            max[i] = self.max[i].max(other.max[i]);
        }
        Rect { min, max }
    }

    /// Extends `self` in place to contain `other`.
    #[inline]
    pub fn extend(&mut self, other: &Rect<D>) {
        for i in 0..D {
            self.min[i] = self.min[i].min(other.min[i]);
            self.max[i] = self.max[i].max(other.max[i]);
        }
    }

    /// Extends `self` in place to contain the point `p`.
    #[inline]
    pub fn extend_point(&mut self, p: &[f64; D]) {
        for ((lo, hi), &pi) in self.min.iter_mut().zip(self.max.iter_mut()).zip(p) {
            *lo = lo.min(pi);
            *hi = hi.max(pi);
        }
    }

    /// Increase in area that would result from extending `self` to contain
    /// `other` (the R-tree "enlargement" criterion).
    #[inline]
    pub fn enlargement(&self, other: &Rect<D>) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Area of the intersection of `self` and `other` (zero if disjoint).
    #[inline]
    pub fn overlap_area(&self, other: &Rect<D>) -> f64 {
        let mut a = 1.0;
        for i in 0..D {
            let lo = self.min[i].max(other.min[i]);
            let hi = self.max[i].min(other.max[i]);
            if hi <= lo {
                return 0.0;
            }
            a *= hi - lo;
        }
        a
    }

    /// Whether the two rectangles intersect (boundaries touching counts).
    #[inline]
    pub fn intersects(&self, other: &Rect<D>) -> bool {
        (0..D).all(|i| self.min[i] <= other.max[i] && other.min[i] <= self.max[i])
    }

    /// Whether `self` fully contains `other`.
    #[inline]
    pub fn contains(&self, other: &Rect<D>) -> bool {
        (0..D).all(|i| self.min[i] <= other.min[i] && self.max[i] >= other.max[i])
    }

    /// Whether `self` contains the point `p` (boundaries inclusive).
    #[inline]
    pub fn contains_point(&self, p: &[f64; D]) -> bool {
        (0..D).all(|i| self.min[i] <= p[i] && p[i] <= self.max[i])
    }

    /// Squared minimum distance between any point of `self` and the point `p`.
    #[inline]
    pub fn min_dist2_point(&self, p: &[f64; D]) -> f64 {
        let mut d2 = 0.0;
        for ((&pi, &lo), &hi) in p.iter().zip(&self.min).zip(&self.max) {
            let d = if pi < lo {
                lo - pi
            } else if pi > hi {
                pi - hi
            } else {
                0.0
            };
            d2 += d * d;
        }
        d2
    }

    /// Squared maximum distance between any point of `self` and the point `p`.
    #[inline]
    pub fn max_dist2_point(&self, p: &[f64; D]) -> f64 {
        let mut d2 = 0.0;
        for ((&pi, &lo), &hi) in p.iter().zip(&self.min).zip(&self.max) {
            let d = (pi - lo).abs().max((pi - hi).abs());
            d2 += d * d;
        }
        d2
    }

    /// Squared minimum distance between any point of `self` and any point of
    /// `other` (zero if they intersect).
    #[inline]
    pub fn min_dist2_rect(&self, other: &Rect<D>) -> f64 {
        let mut d2 = 0.0;
        for i in 0..D {
            let d = (self.min[i] - other.max[i]).max(other.min[i] - self.max[i]).max(0.0);
            d2 += d * d;
        }
        d2
    }

    /// Squared maximum distance between any point of `self` and any point of
    /// `other`.
    #[inline]
    pub fn max_dist2_rect(&self, other: &Rect<D>) -> f64 {
        let mut d2 = 0.0;
        for i in 0..D {
            let d = (self.max[i] - other.min[i]).abs().max((other.max[i] - self.min[i]).abs());
            d2 += d * d;
        }
        d2
    }
}

impl Rect<2> {
    /// Builds the smallest rectangle containing all given points.
    ///
    /// Returns [`Rect::empty`] for an empty iterator.
    pub fn bounding(points: impl IntoIterator<Item = Point>) -> Rect2 {
        let mut r = Rect::empty();
        for p in points {
            r.extend_point(&p.coords());
        }
        r
    }

    /// Minimum Euclidean distance from this rectangle to a [`Point`].
    #[inline]
    pub fn min_dist(&self, p: &Point) -> f64 {
        self.min_dist2_point(&p.coords()).sqrt()
    }

    /// Maximum Euclidean distance from this rectangle to a [`Point`].
    #[inline]
    pub fn max_dist(&self, p: &Point) -> f64 {
        self.max_dist2_point(&p.coords()).sqrt()
    }

    /// Lifts this spatial rectangle into space-time, covering the (inclusive)
    /// timestamp interval `[t_start, t_end]`.
    #[inline]
    pub fn with_time(&self, t_start: f64, t_end: f64) -> Rect3 {
        Rect::new(
            [self.min[0], self.min[1], t_start],
            [self.max[0], self.max[1], t_end],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(min: [f64; 2], max: [f64; 2]) -> Rect2 {
        Rect::new(min, max)
    }

    #[test]
    fn area_margin_center() {
        let a = r([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(a.center(), [1.0, 1.5]);
    }

    #[test]
    fn empty_rectangle_is_union_identity() {
        let e = Rect2::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        let a = r([1.0, 1.0], [2.0, 2.0]);
        assert_eq!(e.union(&a), a);
        assert_eq!(a.union(&e), a);
    }

    #[test]
    fn union_contains_both() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([2.0, -1.0], [3.0, 0.5]);
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
        assert_eq!(u, r([0.0, -1.0], [3.0, 1.0]));
    }

    #[test]
    fn intersection_and_overlap() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        let b = r([1.0, 1.0], [3.0, 3.0]);
        let c = r([5.0, 5.0], [6.0, 6.0]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.overlap_area(&b), 1.0);
        assert_eq!(a.overlap_area(&c), 0.0);
    }

    #[test]
    fn touching_rectangles_intersect_with_zero_overlap() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([1.0, 0.0], [2.0, 1.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn enlargement() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([0.25, 0.25], [0.75, 0.75]);
        assert_eq!(a.enlargement(&b), 0.0);
        let c = r([0.0, 0.0], [2.0, 1.0]);
        assert_eq!(a.enlargement(&c), 1.0);
    }

    #[test]
    fn point_distances_inside_and_outside() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        // Point inside: min dist 0, max dist to farthest corner.
        let p = Point::new(0.5, 0.5);
        assert_eq!(a.min_dist(&p), 0.0);
        let expected_max = Point::new(2.0, 2.0).dist(&p);
        assert!((a.max_dist(&p) - expected_max).abs() < 1e-12);
        // Point outside along x.
        let q = Point::new(5.0, 1.0);
        assert_eq!(a.min_dist(&q), 3.0);
        let expected_max_q = Point::new(0.0, 2.0).dist(&q).max(Point::new(0.0, 0.0).dist(&q));
        assert!((a.max_dist(&q) - expected_max_q).abs() < 1e-12);
    }

    #[test]
    fn rect_rect_distances() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([3.0, 0.0], [4.0, 1.0]);
        assert_eq!(a.min_dist2_rect(&b), 4.0);
        assert_eq!(a.max_dist2_rect(&b), 16.0 + 1.0);
        // Intersecting rectangles have min distance zero.
        let c = r([0.5, 0.5], [2.0, 2.0]);
        assert_eq!(a.min_dist2_rect(&c), 0.0);
    }

    #[test]
    fn bounding_of_points() {
        let pts = vec![Point::new(1.0, 5.0), Point::new(-2.0, 3.0), Point::new(0.0, 7.0)];
        let b = Rect2::bounding(pts);
        assert_eq!(b, r([-2.0, 3.0], [1.0, 7.0]));
        assert!(Rect2::bounding(std::iter::empty()).is_empty());
    }

    #[test]
    fn with_time_produces_3d_box() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let st = a.with_time(5.0, 9.0);
        assert_eq!(st.min, [0.0, 0.0, 5.0]);
        assert_eq!(st.max, [1.0, 1.0, 9.0]);
        assert!(st.contains_point(&[0.5, 0.5, 7.0]));
        assert!(!st.contains_point(&[0.5, 0.5, 10.0]));
    }

    #[test]
    fn min_max_dist_bound_every_contained_point_pair() {
        // A small deterministic grid check: for all pairs of sample points
        // inside two boxes, dmin <= d <= dmax.
        let a = r([0.0, 0.0], [1.0, 2.0]);
        let b = r([2.5, -1.0], [4.0, 0.5]);
        let dmin = a.min_dist2_rect(&b).sqrt();
        let dmax = a.max_dist2_rect(&b).sqrt();
        for i in 0..=4 {
            for j in 0..=4 {
                for k in 0..=4 {
                    for l in 0..=4 {
                        let p = Point::new(
                            a.min[0] + a.extent(0) * i as f64 / 4.0,
                            a.min[1] + a.extent(1) * j as f64 / 4.0,
                        );
                        let q = Point::new(
                            b.min[0] + b.extent(0) * k as f64 / 4.0,
                            b.min[1] + b.extent(1) * l as f64 / 4.0,
                        );
                        let d = p.dist(&q);
                        assert!(d >= dmin - 1e-9, "d {d} < dmin {dmin}");
                        assert!(d <= dmax + 1e-9, "d {d} > dmax {dmax}");
                    }
                }
            }
        }
    }
}
