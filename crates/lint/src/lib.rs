//! `ust-lint`: repo-invariant static analysis for the pnnq workspace.
//!
//! Two analysis layers, both dependency-free:
//!
//! * a line/token-level source scanner ([`rules`]) that enforces the repo's
//!   invariant catalog — determinism of result paths (D001), panic-freedom of
//!   the untrusted decoders (P001), pre-checked allocations (A001), no
//!   wall-clock reads outside the bench timing layer (T001), no `unsafe`
//!   (U001) — with `file:line` findings, auditable waivers and a checked-in
//!   [`config`] (`lint.toml`);
//! * an exhaustive-interleaving model checker ([`claim_model`]) for the
//!   `AdaptationCache` claim/wait/release protocol, proving exactly-once
//!   adaptation and deadlock freedom over every schedule of ≤3 threads.
//!
//! The binary front-end (`cargo run -p ust-lint -- check --workspace`) lives
//! in `main.rs`; DESIGN.md §7 documents the rule catalog and the waiver
//! policy.

pub mod claim_model;
pub mod config;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use config::{Config, ConfigError};
pub use rules::{Finding, Mode};

/// A check run's outcome: everything needed to render text or JSON output.
#[derive(Debug)]
pub struct CheckReport {
    /// All findings, sorted by path then line.
    pub findings: Vec<Finding>,
    /// Number of files visited.
    pub files_checked: usize,
}

/// Checks every `.rs` file under `root` against `config`.
pub fn check_tree(root: &Path, config: &Config, mode: Mode) -> std::io::Result<CheckReport> {
    let files = walk::collect(root, config)?;
    let mut findings = Vec::new();
    let files_checked = files.len();
    for file in files {
        let contents = std::fs::read_to_string(&file.abs)?;
        findings.extend(rules::check_file(config, &file.rel, &contents, file.in_test_dir, mode));
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(CheckReport { findings, files_checked })
}

/// Checks a single file with every rule applied regardless of configured
/// scopes — the fixture-corpus entry point.
pub fn check_file_all_rules(path: &Path, rel: &str) -> std::io::Result<Vec<Finding>> {
    let contents = std::fs::read_to_string(path)?;
    Ok(rules::check_file(&Config::default(), rel, &contents, false, Mode::AllRules))
}

/// Renders findings as JSON (hand-rolled; the linter is dependency-free).
pub fn findings_to_json(report: &CheckReport) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
            json_string(&f.rule),
            json_string(&f.path),
            f.line,
            json_string(&f.message)
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"count\": {},\n  \"files_checked\": {}\n}}\n",
        report.findings.len(),
        report.files_checked
    ));
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_is_sound() {
        let report = CheckReport {
            findings: vec![Finding {
                rule: "P001".to_string(),
                path: "a/b.rs".to_string(),
                line: 3,
                message: "quote \" backslash \\ newline \n done".to_string(),
            }],
            files_checked: 1,
        };
        let json = findings_to_json(&report);
        assert!(json.contains(r#""rule": "P001""#));
        assert!(json.contains(r#"quote \" backslash \\ newline \n done"#));
        assert!(json.contains("\"count\": 1"));
    }
}
