//! D001 positive fixture: every hash-container use is order-free or sorted
//! before anything escapes. Must produce zero findings.

fn keyed_access_only(input: &[(u32, f64)]) -> Option<f64> {
    let mut acc: FxHashMap<u32, f64> = FxHashMap::default();
    for &(k, v) in input {
        acc.insert(k, v);
    }
    acc.get(&7).copied()
}

fn drained_then_sorted(acc: FxHashMap<u32, f64>) -> Vec<(u32, f64)> {
    let mut out: Vec<(u32, f64)> = acc.into_iter().collect();
    out.sort_unstable_by_key(|&(k, _)| k);
    out
}

fn shadowing_rebind(rows: Vec<(u32, f64)>) -> usize {
    let rows: FxHashMap<u32, f64> = rows.into_iter().collect();
    rows.len()
}

fn waived_in_place_update(acc: &mut FxHashMap<u32, f64>) {
    // lint: allow(D001) per-entry in-place update; no cross-entry order dependence
    for (_, v) in acc.iter_mut() {
        *v *= 0.5;
    }
}
