//! Diamond approximations of observation segments.
//!
//! "Given an uncertain spatio-temporal object o, the main idea of the
//! UST-tree is to conservatively approximate the set of possible (location,
//! time) pairs that o could have possibly visited, given its observations Θ.
//! In a first approximation step, these (location, time) pairs [...] are
//! minimally bounded by rectangles. Such a rectangle, for observations Θ_i
//! and Θ_{i+1}, is defined by the time interval [t_i, t_{i+1}], as well as the
//! minimal and maximal longitude and latitude values of all reachable states."
//! (Section 6, see also Figure 5.)

use crate::{ObjectId, Timestamp};
use ust_markov::reachability::ReachabilitySets;
use ust_spatial::{Point, Rect2, Rect3, StateSpace};

/// The rectangular approximation of one observation segment of one object.
#[derive(Debug, Clone)]
pub struct Diamond {
    /// The object this diamond belongs to.
    pub object: ObjectId,
    /// First timestamp of the segment (time of the earlier observation).
    pub t_start: Timestamp,
    /// Last timestamp of the segment (time of the later observation).
    pub t_end: Timestamp,
    /// MBR over all states reachable anywhere in the segment (the rectangle
    /// stored at the UST-tree leaf level).
    pub mbr: Rect2,
    /// Optional per-timestamp MBRs (the dashed rectangles of Figure 5) used
    /// for tighter `dmin`/`dmax` bounds during refinement of the filter step.
    pub per_time: Option<Vec<Rect2>>,
}

impl Diamond {
    /// Builds the diamond of a segment from its reachable state sets.
    ///
    /// Returns `None` if the reachability sets are inconsistent (contradictory
    /// observations) — such segments cannot occur for validly generated data.
    pub fn from_reachability(
        object: ObjectId,
        reach: &ReachabilitySets,
        space: &StateSpace,
        keep_per_time: bool,
    ) -> Option<Diamond> {
        if !reach.is_consistent() {
            return None;
        }
        let mut total = Rect2::empty();
        let mut per_time = Vec::with_capacity(reach.per_time.len());
        for states in &reach.per_time {
            let r = space.mbr_of(states.iter().copied());
            total.extend(&r);
            per_time.push(r);
        }
        Some(Diamond {
            object,
            t_start: reach.start,
            t_end: reach.end,
            mbr: total,
            per_time: if keep_per_time { Some(per_time) } else { None },
        })
    }

    /// Whether the segment covers timestamp `t`.
    #[inline]
    pub fn covers(&self, t: Timestamp) -> bool {
        t >= self.t_start && t <= self.t_end
    }

    /// The tightest available bounding rectangle for the object's position at
    /// time `t` (per-timestamp MBR if kept, otherwise the segment MBR), or
    /// `None` if the segment does not cover `t`.
    pub fn rect_at(&self, t: Timestamp) -> Option<&Rect2> {
        if !self.covers(t) {
            return None;
        }
        match &self.per_time {
            Some(v) => v.get((t - self.t_start) as usize),
            None => Some(&self.mbr),
        }
    }

    /// Lower bound on the distance between the object at time `t` and `q`.
    pub fn dmin(&self, t: Timestamp, q: &Point) -> Option<f64> {
        self.rect_at(t).map(|r| r.min_dist(q))
    }

    /// Upper bound on the distance between the object at time `t` and `q`.
    pub fn dmax(&self, t: Timestamp, q: &Point) -> Option<f64> {
        self.rect_at(t).map(|r| r.max_dist(q))
    }

    /// The space-time box `(x, y, t)` stored in the R\*-tree.
    pub fn space_time_box(&self) -> Rect3 {
        self.mbr.with_time(self.t_start as f64, self.t_end as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_markov::reachability::ReachabilityIndex;
    use ust_markov::CsrMatrix;
    use ust_spatial::StateSpace;

    /// Line of 5 unit-spaced states with bidirectional moves and self-loops.
    fn line() -> (StateSpace, ReachabilityIndex) {
        let space = StateSpace::from_points(
            (0..5).map(|i| Point::new(i as f64, 0.0)).collect(),
        );
        let rows = (0..5i64)
            .map(|i| {
                let mut row = vec![(i as u32, 1.0)];
                if i > 0 {
                    row.push((i as u32 - 1, 1.0));
                }
                if i < 4 {
                    row.push((i as u32 + 1, 1.0));
                }
                row
            })
            .collect();
        let m = CsrMatrix::stochastic_from_weights(rows);
        (space, ReachabilityIndex::from_matrix(&m))
    }

    #[test]
    fn diamond_bounds_reachable_positions() {
        let (space, reach) = line();
        let sets = reach.segment((0, 0), (4, 4));
        let d = Diamond::from_reachability(9, &sets, &space, true).unwrap();
        assert_eq!(d.object, 9);
        assert_eq!(d.t_start, 0);
        assert_eq!(d.t_end, 4);
        assert_eq!(d.mbr.min, [0.0, 0.0]);
        assert_eq!(d.mbr.max, [4.0, 0.0]);
        // At t=0 the object is certainly at state 0.
        let r0 = d.rect_at(0).unwrap();
        assert_eq!(r0.min, [0.0, 0.0]);
        assert_eq!(r0.max, [0.0, 0.0]);
        // At t=2 the object can be anywhere in [0, 2] x {0} — it has to reach
        // state 4 by t=4, so it cannot have fallen behind state 2... wait, it
        // must still be able to reach 4 in 2 steps, so x >= 2.
        let r2 = d.rect_at(2).unwrap();
        assert_eq!(r2.min, [2.0, 0.0]);
        assert_eq!(r2.max, [2.0, 0.0]);
        assert!(d.rect_at(9).is_none());
        assert!(!d.covers(5));
    }

    #[test]
    fn dmin_dmax_bracket_true_distances() {
        let (space, reach) = line();
        let sets = reach.segment((0, 0), (6, 2));
        let d = Diamond::from_reachability(1, &sets, &space, true).unwrap();
        let q = Point::new(10.0, 0.0);
        for t in 0..=6u32 {
            let dmin = d.dmin(t, &q).unwrap();
            let dmax = d.dmax(t, &q).unwrap();
            assert!(dmin <= dmax);
            for &s in sets.at(t) {
                let true_d = space.position(s).dist(&q);
                assert!(true_d >= dmin - 1e-9 && true_d <= dmax + 1e-9);
            }
        }
    }

    #[test]
    fn without_per_time_rects_the_segment_mbr_is_used() {
        let (space, reach) = line();
        let sets = reach.segment((0, 0), (6, 2));
        let fine = Diamond::from_reachability(1, &sets, &space, true).unwrap();
        let coarse = Diamond::from_reachability(1, &sets, &space, false).unwrap();
        assert!(coarse.per_time.is_none());
        let q = Point::new(-3.0, 0.0);
        // The coarse bound can only be looser (smaller dmin, larger dmax).
        for t in 0..=6u32 {
            assert!(coarse.dmin(t, &q).unwrap() <= fine.dmin(t, &q).unwrap() + 1e-12);
            assert!(coarse.dmax(t, &q).unwrap() >= fine.dmax(t, &q).unwrap() - 1e-12);
        }
    }

    #[test]
    fn inconsistent_reachability_produces_no_diamond() {
        let (space, reach) = line();
        let sets = reach.segment((0, 0), (1, 4));
        assert!(Diamond::from_reachability(0, &sets, &space, true).is_none());
    }

    #[test]
    fn space_time_box_spans_the_segment() {
        let (space, reach) = line();
        let sets = reach.segment((3, 1), (7, 3));
        let d = Diamond::from_reachability(2, &sets, &space, false).unwrap();
        let b = d.space_time_box();
        assert_eq!(b.min[2], 3.0);
        assert_eq!(b.max[2], 7.0);
        assert!(b.min[0] <= 1.0 && b.max[0] >= 3.0);
    }
}
