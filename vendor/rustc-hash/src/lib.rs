//! Offline, API-compatible subset of the
//! [`rustc-hash`](https://crates.io/crates/rustc-hash) crate.
//!
//! Provides [`FxHashMap`] / [`FxHashSet`] type aliases over a fast,
//! non-cryptographic multiply-xor hasher. The workspace keys these maps by
//! small integers ([`u32`] state and object identifiers), for which a
//! single-multiply finisher is both faster than SipHash and perfectly
//! adequate: the inputs are not attacker-controlled.
//!
//! The hash function is a Fibonacci-style multiplicative mix, not the exact
//! polynomial of upstream `rustc-hash` — only the *API* is mirrored, iteration
//! order of the maps may differ from upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Golden-ratio multiplier used by the Fibonacci mixing step.
const PHI64: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fast non-cryptographic hasher for trusted, mostly-integer keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        // Rotate-xor-multiply: cheap, and the final multiply diffuses low
        // bits into the high bits that HashMap's modulo discards least.
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(PHI64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One extra avalanche round so sequential integer keys do not land
        // in sequential buckets.
        let mut z = self.state;
        z ^= z >> 32;
        z = z.wrapping_mul(PHI64);
        z ^ (z >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_roundtrip() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "a");
        map.insert(2, "b");
        assert_eq!(map.get(&1), Some(&"a"));
        let set: FxHashSet<u32> = (0..100).collect();
        assert_eq!(set.len(), 100);
        assert!(set.contains(&42));
    }

    #[test]
    fn sequential_keys_spread() {
        // The low bits (what HashMap buckets use) must differ across
        // sequential keys.
        use std::hash::BuildHasher;
        let build = FxBuildHasher::default();
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for k in 0u32..64 {
            low_bits.insert(build.hash_one(k) & 0x3F);
        }
        // With 64 keys into 64 low-bit slots, a decent hash hits many slots.
        assert!(low_bits.len() > 32, "only {} distinct low-bit patterns", low_bits.len());
    }
}
