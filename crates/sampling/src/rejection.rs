//! Traditional (rejection-based) trajectory sampling — the baselines of
//! Section 5.1 and Figure 10.
//!
//! * **TS1** ([`RejectionSampler`]): simulate the a-priori chain forward from
//!   the first observation; a draw is valid only if it happens to pass through
//!   every later observation. The expected number of attempts per valid
//!   sample grows exponentially in the number of observations.
//! * **TS2** ([`SegmentedSampler`]): "This approach can be improved by
//!   segment-wise sampling between observations. Once the first observation
//!   is hit, the corresponding trajectory is memorized, and further samples
//!   from the current observation are drawn until the next observation is
//!   hit." The expected attempt count becomes linear in the number of
//!   observations, but each segment still requires many attempts.
//!
//! Both samplers exist to quantify the benefit of the a-posteriori sampler
//! (one attempt per sample, [`crate::posterior::PosteriorSampler`]); they are
//! not used by the query engine.

use crate::sample_weighted;
use rand::Rng;
use ust_markov::{StateId, Timestamp, TransitionModel};
use ust_trajectory::Trajectory;

/// Outcome of a rejection-sampling run.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectionOutcome {
    /// Number of trajectory generations attempted (including the successful
    /// one, if any).
    pub attempts: u64,
    /// The valid trajectory, or `None` if the attempt budget was exhausted.
    pub trajectory: Option<Trajectory>,
}

impl RejectionOutcome {
    /// Whether a valid trajectory was produced.
    pub fn succeeded(&self) -> bool {
        self.trajectory.is_some()
    }
}

/// TS1: full-trajectory rejection sampling against the a-priori model.
#[derive(Debug, Clone)]
pub struct RejectionSampler<'a, M> {
    model: &'a M,
    observations: &'a [(Timestamp, StateId)],
}

impl<'a, M: TransitionModel> RejectionSampler<'a, M> {
    /// Creates a sampler for the given a-priori model and observation set
    /// (sorted by time).
    pub fn new(model: &'a M, observations: &'a [(Timestamp, StateId)]) -> Self {
        assert!(!observations.is_empty(), "need at least one observation");
        RejectionSampler { model, observations }
    }

    /// Attempts to draw one valid trajectory, giving up after `max_attempts`.
    pub fn sample_one<R: Rng>(&self, rng: &mut R, max_attempts: u64) -> RejectionOutcome {
        let start = self.observations[0].0;
        let end = self.observations[self.observations.len() - 1].0;
        for attempt in 1..=max_attempts {
            if let Some(states) = self.try_draw(rng, start, end) {
                return RejectionOutcome {
                    attempts: attempt,
                    trajectory: Some(Trajectory::new(start, states)),
                };
            }
        }
        RejectionOutcome { attempts: max_attempts, trajectory: None }
    }

    /// One forward simulation; returns the state sequence if it is consistent
    /// with all observations. The simulation aborts at the first violated
    /// observation (which only reduces the counted work, not the number of
    /// attempts).
    fn try_draw<R: Rng>(
        &self,
        rng: &mut R,
        start: Timestamp,
        end: Timestamp,
    ) -> Option<Vec<StateId>> {
        let mut states = Vec::with_capacity((end - start) as usize + 1);
        let mut current = self.observations[0].1;
        states.push(current);
        let mut obs_idx = 1usize;
        for t in start..end {
            let (cols, vals) = self.model.row(current, t);
            current = sample_weighted(cols, vals, rng)?;
            states.push(current);
            if obs_idx < self.observations.len() && self.observations[obs_idx].0 == t + 1 {
                if self.observations[obs_idx].1 != current {
                    return None;
                }
                obs_idx += 1;
            }
        }
        Some(states)
    }
}

/// TS2: segment-wise rejection sampling between consecutive observations.
#[derive(Debug, Clone)]
pub struct SegmentedSampler<'a, M> {
    model: &'a M,
    observations: &'a [(Timestamp, StateId)],
}

impl<'a, M: TransitionModel> SegmentedSampler<'a, M> {
    /// Creates a segment-wise sampler.
    pub fn new(model: &'a M, observations: &'a [(Timestamp, StateId)]) -> Self {
        assert!(!observations.is_empty(), "need at least one observation");
        SegmentedSampler { model, observations }
    }

    /// Attempts to draw one valid trajectory. `max_attempts_per_segment`
    /// bounds the rejection loop of every individual segment.
    pub fn sample_one<R: Rng>(
        &self,
        rng: &mut R,
        max_attempts_per_segment: u64,
    ) -> RejectionOutcome {
        let start = self.observations[0].0;
        let mut states: Vec<StateId> = vec![self.observations[0].1];
        let mut total_attempts = 0u64;
        for pair in self.observations.windows(2) {
            let (t_from, s_from) = pair[0];
            let (t_to, s_to) = pair[1];
            let steps = (t_to - t_from) as usize;
            let mut segment: Option<Vec<StateId>> = None;
            for _ in 0..max_attempts_per_segment {
                total_attempts += 1;
                if let Some(seg) = self.try_segment(rng, t_from, s_from, steps, s_to) {
                    segment = Some(seg);
                    break;
                }
            }
            match segment {
                Some(seg) => states.extend_from_slice(&seg),
                None => return RejectionOutcome { attempts: total_attempts, trajectory: None },
            }
        }
        RejectionOutcome {
            attempts: total_attempts,
            trajectory: Some(Trajectory::new(start, states)),
        }
    }

    /// Simulates `steps` transitions from `(t_from, s_from)`; succeeds if the
    /// final state equals `s_to`. Returns the intermediate states *excluding*
    /// the start state (so segments can be concatenated).
    fn try_segment<R: Rng>(
        &self,
        rng: &mut R,
        t_from: Timestamp,
        s_from: StateId,
        steps: usize,
        s_to: StateId,
    ) -> Option<Vec<StateId>> {
        let mut current = s_from;
        let mut out = Vec::with_capacity(steps);
        for k in 0..steps {
            let (cols, vals) = self.model.row(current, t_from + k as Timestamp);
            current = sample_weighted(cols, vals, rng)?;
            out.push(current);
        }
        if current == s_to {
            Some(out)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ust_markov::{CsrMatrix, MarkovModel};

    /// A 4-state chain where each state moves forward or stays with equal
    /// probability (so hitting a specific later observation is unlikely).
    fn drifting_chain() -> MarkovModel {
        MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 0.5), (1, 0.5)],
            vec![(1, 0.5), (2, 0.5)],
            vec![(2, 0.5), (3, 0.5)],
            vec![(3, 1.0)],
        ]))
    }

    #[test]
    fn valid_samples_hit_all_observations() {
        let model = drifting_chain();
        let obs = vec![(0u32, 0u32), (4, 2), (8, 3)];
        let mut rng = StdRng::seed_from_u64(0);
        let ts1 = RejectionSampler::new(&model, &obs);
        let out = ts1.sample_one(&mut rng, 100_000);
        assert!(out.succeeded());
        assert!(out.trajectory.unwrap().consistent_with(&obs));

        let ts2 = SegmentedSampler::new(&model, &obs);
        let out = ts2.sample_one(&mut rng, 100_000);
        assert!(out.succeeded());
        let tr = out.trajectory.unwrap();
        assert!(tr.consistent_with(&obs));
        assert_eq!(tr.len(), 9);
    }

    #[test]
    fn impossible_observations_exhaust_the_budget() {
        let model = drifting_chain();
        // State 3 is absorbing, so the chain can never be back at 0 afterwards.
        let obs = vec![(0u32, 3u32), (2, 0)];
        let mut rng = StdRng::seed_from_u64(1);
        let ts1 = RejectionSampler::new(&model, &obs);
        let out = ts1.sample_one(&mut rng, 50);
        assert!(!out.succeeded());
        assert_eq!(out.attempts, 50);
        let ts2 = SegmentedSampler::new(&model, &obs);
        let out = ts2.sample_one(&mut rng, 50);
        assert!(!out.succeeded());
    }

    #[test]
    fn segmented_sampling_needs_fewer_attempts_than_full_rejection() {
        // With several observations, TS1's attempt count explodes while TS2's
        // stays roughly linear; verify the ordering on a moderate instance.
        let model = drifting_chain();
        let obs: Vec<(Timestamp, StateId)> =
            vec![(0, 0), (3, 1), (6, 2), (9, 3)];
        let mut rng = StdRng::seed_from_u64(42);
        let runs = 20;
        let mut ts1_attempts = 0u64;
        let mut ts2_attempts = 0u64;
        for _ in 0..runs {
            ts1_attempts += RejectionSampler::new(&model, &obs)
                .sample_one(&mut rng, 1_000_000)
                .attempts;
            ts2_attempts += SegmentedSampler::new(&model, &obs)
                .sample_one(&mut rng, 1_000_000)
                .attempts;
        }
        assert!(
            ts2_attempts < ts1_attempts,
            "TS2 ({ts2_attempts}) should need fewer attempts than TS1 ({ts1_attempts})"
        );
    }

    #[test]
    fn single_observation_needs_exactly_one_attempt() {
        let model = drifting_chain();
        let obs = vec![(5u32, 1u32)];
        let mut rng = StdRng::seed_from_u64(3);
        let out = RejectionSampler::new(&model, &obs).sample_one(&mut rng, 10);
        assert!(out.succeeded());
        assert_eq!(out.attempts, 1);
        let tr = out.trajectory.unwrap();
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.state_at(5), Some(1));
    }
}
