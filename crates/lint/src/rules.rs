//! The rule catalog and the per-file checking engine.
//!
//! Five repo-invariant rules, each guarding a contract earlier PRs
//! established by convention (DESIGN.md §7 documents the catalog):
//!
//! | id   | invariant |
//! |------|-----------|
//! | D001 | no unordered hash-container iteration in result/codec/digest paths |
//! | P001 | no `unwrap`/`expect`/`panic!`/non-literal indexing in decoder code |
//! | A001 | no allocation sized by a decoded integer without a `count` pre-check |
//! | T001 | no `Instant::now`/`SystemTime` outside the bench timing layer |
//! | U001 | no `unsafe` anywhere |
//!
//! Every finding is waivable — inline via `// lint: allow(RULE) reason` on
//! (or directly above) the offending line, or per-path via `lint.toml` — and
//! every waiver must carry a reason. Two meta-rules keep the exemption
//! ledger honest: W000 fires on a reasonless inline waiver, W001 on an
//! inline waiver that no longer suppresses anything.

use crate::config::Config;
use crate::lexer::{self, SourceLine};

/// All rule ids the engine knows, in report order.
pub const RULE_IDS: [&str; 5] = ["D001", "P001", "A001", "T001", "U001"];

/// One-line description of each rule, for `ust-lint rules` and the docs.
pub fn rule_summary(rule: &str) -> &'static str {
    match rule {
        "D001" => "unordered HashMap/HashSet iteration in a deterministic-output path",
        "P001" => "unwrap()/expect()/panic!/non-literal indexing in decoder code",
        "A001" => "allocation sized by a decoded integer without a count pre-check",
        "T001" => "Instant::now/SystemTime outside the bench timing layer",
        "U001" => "unsafe code",
        "W000" => "inline waiver without a reason",
        "W001" => "inline waiver that suppresses nothing",
        _ => "unknown rule",
    }
}

/// One finding: a rule violation at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D001`, `P001`, … or the meta-rules `W000`/`W001`).
    pub rule: String,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {} {}", self.path, self.line, self.rule, self.message)
    }
}

/// An inline `// lint: allow(RULE) reason` comment.
#[derive(Debug)]
struct InlineWaiver {
    rule: String,
    reason: String,
    /// Line the comment sits on (1-based), where W000/W001 report.
    decl_line: usize,
    /// Line the waiver suppresses findings on (1-based).
    target_line: usize,
    used: bool,
}

/// How a file is checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Respect `lint.toml` rule scopes and path waivers (workspace runs).
    Scoped,
    /// Apply every rule regardless of configured scope (fixture runs); the
    /// file's `tests`/`benches` directory classification is ignored too,
    /// but `#[cfg(test)]` regions inside the file are still honoured.
    AllRules,
}

/// Checks one file's contents and returns its findings, sorted by line.
///
/// `rel_path` is the workspace-relative, `/`-separated path used for scope
/// and waiver matching; `in_test_dir` marks files under `tests/`, `benches/`
/// or `examples/` directories (skipped by every rule except U001).
pub fn check_file(
    config: &Config,
    rel_path: &str,
    contents: &str,
    in_test_dir: bool,
    mode: Mode,
) -> Vec<Finding> {
    let lines = lexer::analyze(contents);
    let mut waivers = collect_inline_waivers(&lines);
    let mut findings: Vec<Finding> = Vec::new();

    let in_test_dir = in_test_dir && mode == Mode::Scoped;
    for rule in RULE_IDS {
        if mode == Mode::Scoped && !config.rule_applies(rule, rel_path) {
            continue;
        }
        // Test code is allowed to panic, time itself and iterate hash maps;
        // `unsafe` stays banned everywhere.
        let skip_test = rule != "U001";
        if skip_test && in_test_dir {
            continue;
        }
        let candidates = match rule {
            "D001" => check_d001(&lines, skip_test),
            "P001" => check_p001(&lines, skip_test),
            "A001" => check_a001(&lines, skip_test),
            "T001" => check_t001(&lines, skip_test),
            "U001" => check_u001(&lines),
            _ => unreachable!("RULE_IDS is the closed set of rules"),
        };
        for (line, message) in candidates {
            if let Some(w) = waivers
                .iter_mut()
                .find(|w| w.rule == rule && w.target_line == line)
            {
                w.used = true;
                continue;
            }
            if mode == Mode::Scoped && config.waiver_for(rule, rel_path).is_some() {
                continue;
            }
            findings.push(Finding {
                rule: rule.to_string(),
                path: rel_path.to_string(),
                line,
                message,
            });
        }
    }

    for w in &waivers {
        if w.reason.is_empty() {
            findings.push(Finding {
                rule: "W000".to_string(),
                path: rel_path.to_string(),
                line: w.decl_line,
                message: format!(
                    "waiver for {} has no reason; every exemption must say why it is sound",
                    w.rule
                ),
            });
        } else if !w.used {
            findings.push(Finding {
                rule: "W001".to_string(),
                path: rel_path.to_string(),
                line: w.decl_line,
                message: format!(
                    "waiver for {} suppresses nothing on line {}; delete it or move it \
                     next to the finding",
                    w.rule, w.target_line
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    findings
}

/// Extracts inline waivers: `lint: allow(RULE) reason…` inside a comment.
/// A waiver on a line that has code covers that line; a waiver on a
/// comment-only line covers the next line that has code.
fn collect_inline_waivers(lines: &[SourceLine]) -> Vec<InlineWaiver> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(comment) = &line.comment else { continue };
        let Some(at) = comment.find("lint: allow(") else { continue };
        let rest = &comment[at + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        // Only rule-id-shaped names (`P001`) are waivers; prose that merely
        // mentions the grammar (`allow(RULE)`, `allow(...)`) is not. Unknown
        // but id-shaped rules still register, so a typo'd waiver surfaces as
        // W001 instead of silently suppressing nothing.
        let id_shaped = rule.len() == 4
            && rule.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            && rule.chars().skip(1).all(|c| c.is_ascii_digit());
        if !id_shaped {
            continue;
        }
        let reason = rest[close + 1..].trim().to_string();
        let target_line = if line.code.trim().is_empty() {
            lines
                .iter()
                .enumerate()
                .skip(idx + 1)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map(|(i, _)| i + 1)
                .unwrap_or(idx + 1)
        } else {
            idx + 1
        };
        out.push(InlineWaiver { rule, reason, decl_line: idx + 1, target_line, used: false });
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Occurrences of `word` in `text` at identifier boundaries.
fn word_offsets(text: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0
            || !is_ident_char(text[..at].chars().next_back().unwrap_or(' '));
        let after = text[at + word.len()..].chars().next().unwrap_or(' ');
        if before_ok && !is_ident_char(after) {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

/// Joins code lines into one text with a byte-offset → line-number map.
fn joined_code(lines: &[SourceLine]) -> (String, Vec<usize>) {
    let mut text = String::new();
    let mut starts = Vec::with_capacity(lines.len());
    for line in lines {
        starts.push(text.len());
        text.push_str(&line.code);
        text.push('\n');
    }
    (text, starts)
}

fn line_of(starts: &[usize], offset: usize) -> usize {
    // partition_point: number of lines starting at or before `offset`.
    starts.partition_point(|&s| s <= offset)
}

fn skip_line(lines: &[SourceLine], lineno: usize, skip_test: bool) -> bool {
    skip_test && lines.get(lineno - 1).is_some_and(|l| l.in_test)
}

// ---------------------------------------------------------------------------
// D001 — unordered hash iteration in deterministic-output paths
// ---------------------------------------------------------------------------

const HASH_TYPES: [&str; 4] = ["FxHashMap", "FxHashSet", "HashMap", "HashSet"];
const ITER_METHODS: [&str; 7] =
    [".iter()", ".iter_mut()", ".into_iter()", ".keys()", ".values()", ".values_mut()", ".drain("];

/// Flags iteration over identifiers whose hash-container type is visible in
/// this file (`let`/field/param declarations). Membership tests and keyed
/// lookups are order-free and stay silent; `.iter()`-family calls and `for …
/// in ident` loops fire — unless a `.sort` call follows within three lines,
/// the repo's established "drain, then sort before emitting" idiom that this
/// rule exists to make mandatory. Matches on the identifier's own declaration
/// line are skipped too: in `let x: FxHashMap<…> = x.into_iter()…` the
/// receiver is the pre-shadow binding, not the map. Receivers whose type is
/// not visible in the file (e.g. behind a method call) are out of reach of
/// this token-level check — DESIGN.md §7 documents the limitation.
fn check_d001(lines: &[SourceLine], skip_test: bool) -> Vec<(usize, String)> {
    let (text, starts) = joined_code(lines);
    // Pass 1: hash-typed identifiers declared in this file.
    let mut idents: Vec<String> = Vec::new();
    for line in lines.iter() {
        let code = line.code.trim();
        if code.starts_with("use ") {
            continue;
        }
        for ty in HASH_TYPES {
            for at in word_offsets(&line.code, ty) {
                // The identifier sits before the nearest `:` or `=` that
                // precedes the type name: `let mut acc: FxHashMap<…> = …`,
                // `let mut out = FxHashMap::default()`, `slots: Mutex<FxHashMap…>`.
                let head = &line.code[..at];
                let Some(sep) = head.rfind([':', '=']) else { continue };
                let ident: String = head[..sep]
                    .trim_end()
                    .chars()
                    .rev()
                    .take_while(|&c| is_ident_char(c))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .rev()
                    .collect();
                if !ident.is_empty()
                    && !ident.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && !idents.contains(&ident)
                {
                    idents.push(ident);
                }
            }
        }
    }
    // Pass 2: iteration over those identifiers.
    let mut out = Vec::new();
    for ident in &idents {
        for at in word_offsets(&text, ident) {
            let lineno = line_of(&starts, at);
            if skip_line(lines, lineno, skip_test) {
                continue;
            }
            // Shadowing declarations iterate the *previous* binding:
            // in `let x: FxHashMap<…> = x.into_iter()…` the receiver is the
            // pre-shadow value, so a match inside a `let <ident> … = …`
            // statement head is not hash iteration.
            let stmt_start = text[..at].rfind([';', '{', '}']).map_or(0, |i| i + 1);
            let stmt_head = &text[stmt_start..at];
            let shadow_decl = stmt_head.contains("let ")
                && stmt_head.contains('=')
                && !word_offsets(stmt_head, ident).is_empty();
            if shadow_decl {
                continue;
            }
            // The drain-then-sort idiom restores a total order before
            // anything is emitted; a `.sort` within the next three lines
            // clears the finding.
            let sorted_after = lines[lineno - 1..lineno.saturating_add(3).min(lines.len())]
                .iter()
                .any(|l| l.code.contains(".sort"));
            if sorted_after {
                continue;
            }
            let after = text[at + ident.len()..].trim_start();
            let method = ITER_METHODS.iter().find(|m| after.starts_with(*m));
            let for_loop = {
                let before = text[..at].trim_end();
                let before = before.strip_suffix('&').unwrap_or(before).trim_end();
                before.ends_with(" in") && matches!(after.chars().next(), Some('{'))
            };
            if let Some(method) = method {
                out.push((
                    lineno,
                    format!(
                        "hash-container `{ident}`{method} iterates in hash order; sort \
                         before emitting or waive with the ordering argument"
                    ),
                ));
            } else if for_loop {
                out.push((
                    lineno,
                    format!("`for … in {ident}` iterates a hash container in hash order"),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// P001 — panic paths in decoder code
// ---------------------------------------------------------------------------

/// Flags `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`,
/// `unimplemented!` and non-literal slice indexing. Indexing with a bare
/// integer-literal index (`b[0]`) is allowed by design: in decoder code the
/// bounds check is adjacent and constant (`bytes(4)?` then `b[3]`), and
/// flagging those would bury the real hazards under waivers.
fn check_p001(lines: &[SourceLine], skip_test: bool) -> Vec<(usize, String)> {
    let (text, starts) = joined_code(lines);
    let mut out = Vec::new();
    for pat in [".unwrap()", ".expect("] {
        for at in text_offsets(&text, pat) {
            let lineno = line_of(&starts, at);
            if !skip_line(lines, lineno, skip_test) {
                out.push((
                    lineno,
                    format!(
                        "`{}` can panic; decoder code must return a typed error",
                        pat.trim_end_matches('(')
                    ),
                ));
            }
        }
    }
    for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
        for at in word_offsets(&text, mac.trim_end_matches('!')) {
            if text[at..].chars().nth(mac.len() - 1) != Some('!') {
                continue;
            }
            let lineno = line_of(&starts, at);
            if !skip_line(lines, lineno, skip_test) {
                out.push((lineno, format!("`{mac}` in decoder code")));
            }
        }
    }
    // Non-literal slice indexing: `expr[index]` where `index` is not a bare
    // integer literal (or the full-range `..`).
    let bytes: Vec<char> = text.chars().collect();
    let char_offsets: Vec<usize> = text.char_indices().map(|(i, _)| i).collect();
    for (ci, &c) in bytes.iter().enumerate() {
        if c != '[' || ci == 0 {
            continue;
        }
        let mut k = ci;
        while k > 0 && bytes[k - 1].is_whitespace() {
            k -= 1;
        }
        let prev = if k > 0 { bytes[k - 1] } else { ' ' };
        let indexes_expr = is_ident_char(prev) || prev == ')' || prev == ']';
        if !indexes_expr {
            continue;
        }
        // `&'a [u8]` is a type, not an index: skip when the token before the
        // bracket is a lifetime.
        if is_ident_char(prev) {
            let mut s = k;
            while s > 0 && is_ident_char(bytes[s - 1]) {
                s -= 1;
            }
            if s > 0 && bytes[s - 1] == '\'' {
                continue;
            }
        }
        // Find the matching `]`.
        let mut depth = 1;
        let mut cj = ci + 1;
        while cj < bytes.len() && depth > 0 {
            match bytes[cj] {
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
            cj += 1;
        }
        if depth != 0 {
            continue;
        }
        let content: String = bytes[ci + 1..cj - 1].iter().collect();
        let content = content.trim();
        let literal = !content.is_empty() && content.chars().all(|c| c.is_ascii_digit() || c == '_');
        if literal || content == ".." || content.is_empty() {
            continue;
        }
        let lineno = line_of(&starts, char_offsets[ci]);
        if !skip_line(lines, lineno, skip_test) {
            out.push((
                lineno,
                format!("slice index `[{content}]` can panic; use `get`/`first`/`last` \
                         or waive with the bounds argument"),
            ));
        }
    }
    out
}

/// Raw (non-word-boundary) occurrences of `pat`.
fn text_offsets(text: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(pat) {
        out.push(from + pos);
        from = from + pos + pat.len();
    }
    out
}

// ---------------------------------------------------------------------------
// A001 — allocations sized by decoded integers
// ---------------------------------------------------------------------------

/// Flags `with_capacity(expr)` where `expr` is not an integer literal and no
/// identifier in `expr` was bound from a `.count(…)` call earlier in the
/// same function (`ByteReader::count` proves the input can back the
/// allocation before it is sized).
fn check_a001(lines: &[SourceLine], skip_test: bool) -> Vec<(usize, String)> {
    let (text, starts) = joined_code(lines);
    let mut out = Vec::new();
    for at in text_offsets(&text, "with_capacity(") {
        let lineno = line_of(&starts, at);
        if skip_line(lines, lineno, skip_test) {
            continue;
        }
        let open = at + "with_capacity(".len();
        let mut depth = 1;
        let mut j = open;
        let bytes = text.as_bytes();
        while j < bytes.len() && depth > 0 {
            match bytes[j] {
                b'(' => depth += 1,
                b')' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let arg = text[open..j.saturating_sub(1)].trim();
        if arg.chars().all(|c| c.is_ascii_digit() || c == '_') && !arg.is_empty() {
            continue;
        }
        // Identifiers of the argument expression, checked against
        // `let <ident> = … .count(…)` bindings above in the same function.
        let idents: Vec<String> = split_idents(arg);
        let fn_start = enclosing_fn_start(lines, lineno);
        let checked = idents.iter().any(|ident| {
            lines[fn_start..lineno].iter().any(|l| {
                let code = l.code.trim_start();
                code.starts_with("let ")
                    && code.contains(".count(")
                    && !word_offsets(&l.code, ident).is_empty()
            })
        });
        if !checked {
            out.push((
                lineno,
                format!(
                    "`with_capacity({arg})` is not sized from a `count(…)`-checked value; \
                     pre-check the length against the remaining input or waive with the \
                     bounds argument"
                ),
            ));
        }
    }
    out
}

fn split_idents(expr: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in expr.chars().chain(std::iter::once(' ')) {
        if is_ident_char(c) {
            cur.push(c);
        } else if !cur.is_empty() {
            let word = std::mem::take(&mut cur);
            let keyword = matches!(
                word.as_str(),
                "as" | "usize" | "u64" | "u32" | "u16" | "u8" | "i64" | "i32" | "len" | "from"
            ) || word.chars().next().is_some_and(|c| c.is_ascii_digit());
            if !keyword && !out.contains(&word) {
                out.push(word);
            }
        }
    }
    out
}

/// Index (0-based) of the `fn` line enclosing `lineno` (1-based), or 0.
fn enclosing_fn_start(lines: &[SourceLine], lineno: usize) -> usize {
    (0..lineno.saturating_sub(1))
        .rev()
        .find(|&i| {
            let code = lines[i].code.trim_start();
            code.starts_with("fn ")
                || code.starts_with("pub fn ")
                || code.starts_with("pub(crate) fn ")
                || code.starts_with("pub(super) fn ")
                || code.starts_with("async fn ")
                || code.starts_with("const fn ")
        })
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// T001 — wall-clock reads outside the bench timing layer
// ---------------------------------------------------------------------------

/// Flags `Instant::now` and `SystemTime` uses. `use` lines are exempt (the
/// import is not the hazard, the read is).
fn check_t001(lines: &[SourceLine], skip_test: bool) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if skip_test && line.in_test {
            continue;
        }
        if line.code.trim_start().starts_with("use ") {
            continue;
        }
        for pat in ["Instant::now", "SystemTime"] {
            if !word_offsets(&line.code, pat.split("::").next().unwrap_or(pat)).is_empty()
                && line.code.contains(pat)
            {
                out.push((
                    idx + 1,
                    format!(
                        "`{pat}` outside the bench timing layer; wall-clock values must \
                         never feed result bytes or digests"
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// U001 — unsafe code
// ---------------------------------------------------------------------------

fn check_u001(lines: &[SourceLine]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        // `#![forbid(unsafe_code)]`-style attributes mention the word but
        // *ban* the construct; only the keyword itself fires.
        if !word_offsets(&line.code, "unsafe").is_empty() && !line.code.contains("unsafe_code") {
            out.push((idx + 1, "`unsafe` is banned workspace-wide".to_string()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(rule_src: &str) -> Vec<Finding> {
        check_file(&Config::default(), "x.rs", rule_src, false, Mode::AllRules)
    }

    #[test]
    fn p001_fires_and_is_waivable() {
        let src = "fn f(v: &[u8]) -> u8 {\n    v.first().copied().unwrap()\n}\n";
        let found = check(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "P001");
        assert_eq!(found[0].line, 2);

        let src = "fn f(v: &[u8]) -> u8 {\n    // lint: allow(P001) caller guarantees non-empty\n    v.first().copied().unwrap()\n}\n";
        assert!(check(src).is_empty(), "waived finding must be silent");
    }

    #[test]
    fn reasonless_and_unused_waivers_fire_meta_rules() {
        let src = "fn f() {\n    // lint: allow(P001)\n    let x = 1;\n}\n";
        let found = check(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "W000");

        let src = "fn f() {\n    // lint: allow(P001) stale reason\n    let x = 1;\n}\n";
        let found = check(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "W001");
    }

    #[test]
    fn p001_skips_literal_indexing_and_test_code() {
        let src = "fn f(b: &[u8]) -> u8 { b[0] }\n#[cfg(test)]\nmod tests {\n    fn t(v: &[u8]) { v.last().unwrap(); }\n}\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn d001_needs_a_declared_hash_ident() {
        let src = "fn f() {\n    let mut m = FxHashMap::default();\n    for (k, v) in m.iter() { emit(k, v); }\n}\n";
        let found = check(src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "D001");
        assert_eq!(found[0].line, 3);

        let src = "fn f() {\n    let mut m = FxHashMap::default();\n    m.insert(1, 2);\n    let _ = m.get(&1);\n}\n";
        assert!(check(src).is_empty(), "keyed access is order-free");
    }

    #[test]
    fn a001_accepts_count_checked_sizes() {
        let ok = "fn d(r: &mut R) {\n    let n = r.count(\"xs\", 8)?;\n    let v = Vec::with_capacity(n);\n}\n";
        assert!(check(ok).is_empty());
        let bad = "fn d(r: &mut R) {\n    let n = r.u64()? as usize;\n    let v = Vec::with_capacity(n);\n}\n";
        let found = check(bad);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "A001");
    }

    #[test]
    fn t001_and_u001() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); unsafe { x() } }\n";
        let found = check(src);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].rule, "T001");
        assert_eq!(found[1].rule, "U001");
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "fn f() {\n    let s = \"x.unwrap() unsafe Instant::now\";\n    // x.unwrap() would panic\n}\n";
        assert!(check(src).is_empty());
    }
}
