//! Per-structure encoders and validating decoders.
//!
//! Encoders write one canonical byte form per value: hash-map-backed
//! structures (per-object model overrides, transition-table rows) are emitted
//! in ascending key order, so encode→decode→encode is byte-identical. The
//! decoders validate every structural invariant the in-memory constructors
//! rely on — sortedness, positivity, finiteness, ids in range — *before*
//! handing values to those constructors, so a decoded store can never smuggle
//! a panic into later query processing (`CsrMatrix::row`,
//! `StateSpace::position`, `Rect::new` and friends all index or assert on
//! exactly the invariants checked here).

use crate::error::StoreError;
use crate::format::{ByteReader, ByteWriter};
use rustc_hash::FxHashSet;
use std::sync::Arc;
use ust_index::{Diamond, IndexBuildStats, UstTree};
use ust_markov::adapt::TransitionTable;
use ust_markov::{AdaptedModel, CsrMatrix, MarkovModel, SparseDist};
use ust_spatial::{Point, Rect2, StateId, StateSpace};
use ust_trajectory::{ObjectId, Timestamp, TrajectoryDatabase, UncertainObject};

/// Model-kind tag: homogeneous (one matrix for all timestamps).
const MODEL_HOMOGENEOUS: u8 = 0;
/// Model-kind tag: time-varying (one matrix per timestamp offset).
const MODEL_TIME_VARYING: u8 = 1;

// ---------------------------------------------------------------------------
// State space
// ---------------------------------------------------------------------------

pub(crate) fn encode_state_space(w: &mut ByteWriter, space: &StateSpace) {
    w.u64(space.len() as u64);
    for p in space.positions() {
        w.f64(p.x);
        w.f64(p.y);
    }
}

pub(crate) fn decode_state_space(r: &mut ByteReader<'_>) -> Result<StateSpace, StoreError> {
    r.set_context("state space");
    let n = r.count("state positions", 16)?;
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        let x = r.f64()?;
        let y = r.f64()?;
        if !x.is_finite() || !y.is_finite() {
            return Err(StoreError::Malformed { context: "state position is not finite" });
        }
        positions.push(Point::new(x, y));
    }
    Ok(StateSpace::from_points(positions))
}

// ---------------------------------------------------------------------------
// Transition matrices and models
// ---------------------------------------------------------------------------

pub(crate) fn encode_csr(w: &mut ByteWriter, m: &CsrMatrix) {
    w.u64(m.num_states() as u64);
    for i in 0..m.num_states() {
        let (cols, vals) = m.row(i as StateId);
        w.u64(cols.len() as u64);
        for (&c, &v) in cols.iter().zip(vals) {
            w.u32(c);
            w.f64(v);
        }
    }
}

pub(crate) fn decode_csr(r: &mut ByteReader<'_>) -> Result<CsrMatrix, StoreError> {
    r.set_context("transition matrix");
    let num_states = r.count("matrix rows", 8)?;
    let mut rows: Vec<Vec<(StateId, f64)>> = Vec::with_capacity(num_states);
    for _ in 0..num_states {
        let n = r.count("matrix row entries", 12)?;
        let mut row = Vec::with_capacity(n);
        let mut prev: Option<StateId> = None;
        for _ in 0..n {
            let col = r.u32()?;
            let val = r.f64()?;
            if col as usize >= num_states {
                return Err(StoreError::Malformed { context: "matrix column out of range" });
            }
            if prev.is_some_and(|p| p >= col) {
                return Err(StoreError::Malformed {
                    context: "matrix columns not strictly increasing",
                });
            }
            if !val.is_finite() || val <= 0.0 {
                return Err(StoreError::Malformed {
                    context: "matrix value not positive and finite",
                });
            }
            prev = Some(col);
            row.push((col, val));
        }
        rows.push(row);
    }
    // The input is sorted, duplicate-free and strictly positive, so
    // `from_rows` stores it verbatim: the CSR layout is bit-identical to the
    // encoded matrix.
    Ok(CsrMatrix::from_rows(rows))
}

pub(crate) fn encode_model(w: &mut ByteWriter, model: &MarkovModel) {
    match model {
        MarkovModel::Homogeneous(m) => {
            w.u8(MODEL_HOMOGENEOUS);
            encode_csr(w, m);
        }
        MarkovModel::TimeVarying(ms) => {
            w.u8(MODEL_TIME_VARYING);
            w.u64(ms.len() as u64);
            for m in ms.iter() {
                encode_csr(w, m);
            }
        }
    }
}

pub(crate) fn decode_model(
    r: &mut ByteReader<'_>,
    num_states: usize,
) -> Result<MarkovModel, StoreError> {
    r.set_context("a-priori model");
    let check = |m: &CsrMatrix| {
        if m.num_states() == num_states {
            Ok(())
        } else {
            Err(StoreError::Malformed {
                context: "model state count disagrees with the state space",
            })
        }
    };
    match r.u8()? {
        MODEL_HOMOGENEOUS => {
            let m = decode_csr(r)?;
            check(&m)?;
            Ok(MarkovModel::homogeneous(m))
        }
        MODEL_TIME_VARYING => {
            let n = r.count("time-varying matrices", 8)?;
            if n == 0 {
                return Err(StoreError::Malformed {
                    context: "time-varying model has no matrices",
                });
            }
            let mut ms = Vec::with_capacity(n);
            for _ in 0..n {
                let m = decode_csr(r)?;
                check(&m)?;
                ms.push(m);
            }
            Ok(MarkovModel::time_varying(ms))
        }
        _ => Err(StoreError::Malformed { context: "unknown model kind tag" }),
    }
}

// ---------------------------------------------------------------------------
// Sparse distributions and transition tables
// ---------------------------------------------------------------------------

pub(crate) fn encode_dist(w: &mut ByteWriter, d: &SparseDist) {
    w.u64(d.support_size() as u64);
    for (s, p) in d.iter() {
        w.u32(s);
        w.f64(p);
    }
}

pub(crate) fn decode_dist(
    r: &mut ByteReader<'_>,
    num_states: usize,
) -> Result<SparseDist, StoreError> {
    let n = r.count("distribution entries", 12)?;
    let mut entries = Vec::with_capacity(n);
    let mut prev: Option<StateId> = None;
    for _ in 0..n {
        let state = r.u32()?;
        let prob = r.f64()?;
        if state as usize >= num_states {
            return Err(StoreError::Malformed { context: "distribution state out of range" });
        }
        if prev.is_some_and(|p| p >= state) {
            return Err(StoreError::Malformed {
                context: "distribution states not strictly increasing",
            });
        }
        if !prob.is_finite() || prob <= 0.0 {
            return Err(StoreError::Malformed {
                context: "distribution probability not positive and finite",
            });
        }
        prev = Some(state);
        entries.push((state, prob));
    }
    // Sorted, duplicate-free, strictly positive: `from_pairs` keeps the
    // entries verbatim and recomputes the cached mass with the same
    // left-to-right fold the original used — bit-identical round trip.
    Ok(SparseDist::from_pairs(entries))
}

pub(crate) fn encode_table(w: &mut ByteWriter, table: &TransitionTable) {
    let mut rows: Vec<(StateId, &SparseDist)> = table.iter().collect();
    rows.sort_unstable_by_key(|&(s, _)| s);
    w.u64(rows.len() as u64);
    for (state, dist) in rows {
        w.u32(state);
        encode_dist(w, dist);
    }
}

pub(crate) fn decode_table(
    r: &mut ByteReader<'_>,
    num_states: usize,
) -> Result<TransitionTable, StoreError> {
    let n = r.count("transition-table rows", 12)?;
    let mut rows = Vec::with_capacity(n);
    let mut prev: Option<StateId> = None;
    for _ in 0..n {
        let state = r.u32()?;
        if state as usize >= num_states {
            return Err(StoreError::Malformed {
                context: "transition-table source state out of range",
            });
        }
        if prev.is_some_and(|p| p >= state) {
            return Err(StoreError::Malformed {
                context: "transition-table rows not strictly increasing",
            });
        }
        prev = Some(state);
        rows.push((state, decode_dist(r, num_states)?));
    }
    // Rows were stored already normalized; `from_rows` must not renormalize
    // them (that would change the bits).
    Ok(TransitionTable::from_rows(rows))
}

// ---------------------------------------------------------------------------
// Adapted models
// ---------------------------------------------------------------------------

pub(crate) fn encode_adapted(w: &mut ByteWriter, m: &AdaptedModel) {
    let obs = m.observations();
    w.u64(obs.len() as u64);
    for &(t, s) in obs {
        w.u32(t);
        w.u32(s);
    }
    for t in m.start()..=m.end() {
        // lint: allow(P001) encode side: t iterates the model's own [start, end] range
        encode_dist(w, m.forward_at(t).expect("t inside the covered interval"));
    }
    for t in m.start()..=m.end() {
        // lint: allow(P001) encode side: t iterates the model's own [start, end] range
        encode_dist(w, m.posterior_at(t).expect("t inside the covered interval"));
    }
    for t in m.start()..m.end() {
        // lint: allow(P001) encode side: t iterates the model's own [start, end) range
        encode_table(w, m.transition_table(t).expect("t inside [start, end)"));
    }
}

pub(crate) fn decode_adapted(
    r: &mut ByteReader<'_>,
    num_states: usize,
) -> Result<AdaptedModel, StoreError> {
    r.set_context("adapted model");
    let n = r.count("adapted-model observations", 8)?;
    if n == 0 {
        return Err(StoreError::Malformed { context: "adapted model has no observations" });
    }
    let mut observations: Vec<(Timestamp, StateId)> = Vec::with_capacity(n);
    for _ in 0..n {
        let t = r.u32()?;
        let s = r.u32()?;
        if s as usize >= num_states {
            return Err(StoreError::Malformed { context: "observation state out of range" });
        }
        if observations.last().is_some_and(|&(prev, _)| prev >= t) {
            return Err(StoreError::Malformed {
                context: "observation times not strictly increasing",
            });
        }
        observations.push((t, s));
    }
    let Some((&(start, _), &(end, _))) = observations.first().zip(observations.last()) else {
        return Err(StoreError::Malformed { context: "adapted model has no observations" });
    };
    let horizon = (end - start) as u64;
    // The marginal and table vectors are sized from the observation span, not
    // from a stored count — prove the input can back them (each marginal and
    // table costs at least its 8-byte length field) before allocating.
    let min_needed = (horizon + 1) * 16 + horizon * 8;
    if min_needed > r.remaining() as u64 {
        return Err(StoreError::CountOverflow {
            context: "adapted-model horizon",
            count: horizon + 1,
        });
    }
    let horizon = horizon as usize;
    // lint: allow(A001) horizon is pre-checked against remaining() by the min_needed guard above
    let mut forward = Vec::with_capacity(horizon + 1);
    for _ in 0..=horizon {
        forward.push(decode_dist(r, num_states)?);
    }
    // lint: allow(A001) horizon is pre-checked against remaining() by the min_needed guard above
    let mut posterior = Vec::with_capacity(horizon + 1);
    for _ in 0..=horizon {
        posterior.push(decode_dist(r, num_states)?);
    }
    // lint: allow(A001) horizon is pre-checked against remaining() by the min_needed guard above
    let mut transitions = Vec::with_capacity(horizon);
    for _ in 0..horizon {
        transitions.push(decode_table(r, num_states)?);
    }
    // The alias-table sampling kernel is NOT part of the MODELS section:
    // it is a deterministic pure function of the transition rows, and
    // `from_parts` rebuilds it from the decoded rows — so a store-loaded
    // model samples identically to the freshly adapted one it was encoded
    // from, with zero format change.
    AdaptedModel::from_parts(observations, forward, posterior, transitions)
        .map_err(|context| StoreError::Malformed { context })
}

// ---------------------------------------------------------------------------
// Objects and the trajectory database
// ---------------------------------------------------------------------------

pub(crate) fn encode_object(w: &mut ByteWriter, o: &UncertainObject) {
    w.u32(o.id());
    w.u64(o.num_observations() as u64);
    for obs in o.observations() {
        w.u32(obs.time);
        w.u32(obs.state);
    }
}

pub(crate) fn decode_object(
    r: &mut ByteReader<'_>,
    num_states: usize,
) -> Result<UncertainObject, StoreError> {
    let id = r.u32()?;
    let n = r.count("object observations", 8)?;
    let mut pairs: Vec<(Timestamp, StateId)> = Vec::with_capacity(n);
    for _ in 0..n {
        let t = r.u32()?;
        let s = r.u32()?;
        if s as usize >= num_states {
            return Err(StoreError::Malformed { context: "observation state out of range" });
        }
        pairs.push((t, s));
    }
    UncertainObject::from_pairs(id, pairs).map_err(|e| match e {
        ust_trajectory::ObservationError::Empty => {
            StoreError::Malformed { context: "object has no observations" }
        }
        ust_trajectory::ObservationError::NotStrictlyIncreasing { .. } => {
            StoreError::Malformed { context: "observation times not strictly increasing" }
        }
    })
}

pub(crate) fn encode_database(w: &mut ByteWriter, db: &TrajectoryDatabase) {
    encode_state_space(w, db.state_space());
    encode_model(w, db.shared_model());
    w.u64(db.len() as u64);
    for o in db.objects() {
        encode_object(w, o);
    }
    let overrides = db.model_overrides();
    w.u64(overrides.len() as u64);
    for (id, model) in overrides {
        w.u32(id);
        encode_model(w, model);
    }
}

pub(crate) fn decode_database(
    r: &mut ByteReader<'_>,
) -> Result<TrajectoryDatabase, StoreError> {
    let space = decode_state_space(r)?;
    let num_states = space.len();
    let shared = decode_model(r, num_states)?;
    r.set_context("objects");
    let n = r.count("objects", 20)?;
    let mut objects = Vec::with_capacity(n);
    let mut seen: FxHashSet<ObjectId> = FxHashSet::default();
    for _ in 0..n {
        let o = decode_object(r, num_states)?;
        if !seen.insert(o.id()) {
            return Err(StoreError::Malformed { context: "duplicate object id" });
        }
        objects.push(o);
    }
    let mut db =
        TrajectoryDatabase::with_objects(Arc::new(space), Arc::new(shared), objects);
    r.set_context("model overrides");
    let n = r.count("model overrides", 12)?;
    let mut prev: Option<ObjectId> = None;
    for _ in 0..n {
        let id = r.u32()?;
        if prev.is_some_and(|p| p >= id) {
            return Err(StoreError::Malformed {
                context: "model overrides not strictly increasing",
            });
        }
        prev = Some(id);
        let model = decode_model(r, num_states)?;
        db.set_object_model(id, Arc::new(model));
    }
    Ok(db)
}

// ---------------------------------------------------------------------------
// Diamonds and the UST-tree
// ---------------------------------------------------------------------------

fn encode_rect2(w: &mut ByteWriter, rect: &Rect2) {
    w.f64(rect.min[0]);
    w.f64(rect.min[1]);
    w.f64(rect.max[0]);
    w.f64(rect.max[1]);
}

fn decode_rect2(r: &mut ByteReader<'_>) -> Result<Rect2, StoreError> {
    let min = [r.f64()?, r.f64()?];
    let max = [r.f64()?, r.f64()?];
    let valid = min.iter().zip(&max).all(|(lo, hi)| lo.is_finite() && hi.is_finite() && lo <= hi);
    if !valid {
        return Err(StoreError::Malformed { context: "diamond rectangle" });
    }
    Ok(Rect2 { min, max })
}

pub(crate) fn encode_tree(w: &mut ByteWriter, tree: &UstTree) {
    w.u64(tree.rtree_capacity() as u64);
    w.u64(tree.num_objects() as u64);
    let stats = tree.build_stats();
    w.u64(u64::try_from(stats.build_time.as_nanos()).unwrap_or(u64::MAX));
    w.u64(stats.build_threads as u64);
    w.u64(stats.objects as u64);
    w.u64(stats.segments as u64);
    w.u64(stats.diamonds as u64);
    w.u64(stats.reach_memo_hits as u64);
    w.u64(stats.reach_memo_misses as u64);
    w.u64(stats.peak_frontier as u64);
    w.u64(tree.num_diamonds() as u64);
    for d in tree.diamonds() {
        w.u32(d.object);
        w.u32(d.t_start);
        w.u32(d.t_end);
        encode_rect2(w, &d.mbr);
        match &d.per_time {
            Some(rects) => {
                w.u8(1);
                for rect in rects {
                    encode_rect2(w, rect);
                }
            }
            None => w.u8(0),
        }
    }
}

pub(crate) fn decode_tree(
    r: &mut ByteReader<'_>,
    db: &TrajectoryDatabase,
) -> Result<UstTree, StoreError> {
    r.set_context("tree header");
    let capacity = read_usize(r)?;
    if capacity < 4 {
        return Err(StoreError::Malformed { context: "R*-tree capacity below minimum" });
    }
    let num_objects = read_usize(r)?;
    if num_objects != db.len() {
        return Err(StoreError::Malformed {
            context: "tree object count disagrees with the database",
        });
    }
    let stats = IndexBuildStats {
        build_time: std::time::Duration::from_nanos(r.u64()?),
        build_threads: read_usize(r)?,
        objects: read_usize(r)?,
        segments: read_usize(r)?,
        diamonds: read_usize(r)?,
        reach_memo_hits: read_usize(r)?,
        reach_memo_misses: read_usize(r)?,
        peak_frontier: read_usize(r)?,
    };
    r.set_context("diamonds");
    let known: FxHashSet<ObjectId> = db.objects().iter().map(|o| o.id()).collect();
    let n = r.count("diamonds", 45)?;
    if stats.diamonds != n {
        return Err(StoreError::Malformed {
            context: "tree stats disagree with the diamond count",
        });
    }
    let mut diamonds = Vec::with_capacity(n);
    for _ in 0..n {
        let object = r.u32()?;
        if !known.contains(&object) {
            return Err(StoreError::Malformed { context: "diamond references unknown object" });
        }
        let t_start = r.u32()?;
        let t_end = r.u32()?;
        if t_start > t_end {
            return Err(StoreError::Malformed { context: "diamond time interval inverted" });
        }
        let mbr = decode_rect2(r)?;
        let per_time = match r.u8()? {
            0 => None,
            1 => {
                // One rect per covered timestamp — the count is implied by the
                // time interval, so bound it against the remaining input
                // before allocating.
                let count = u64::from(t_end - t_start) + 1;
                if count * 32 > r.remaining() as u64 {
                    return Err(StoreError::CountOverflow {
                        context: "diamond per-time rectangles",
                        count,
                    });
                }
                let mut rects = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    rects.push(decode_rect2(r)?);
                }
                Some(rects)
            }
            _ => return Err(StoreError::Malformed { context: "diamond per-time flag" }),
        };
        diamonds.push(Diamond { object, t_start, t_end, mbr, per_time });
    }
    // The R*-tree itself is not stored: STR bulk loading is deterministic, so
    // rebuilding it from the validated diamond arena reproduces the original
    // tree shape exactly (see `UstTree::from_parts`).
    Ok(UstTree::from_parts(diamonds, num_objects, capacity, stats))
}

/// Reads a `u64` that must fit a `usize` (counters, capacities).
fn read_usize(r: &mut ByteReader<'_>) -> Result<usize, StoreError> {
    usize::try_from(r.u64()?)
        .map_err(|_| StoreError::Malformed { context: "counter exceeds the address space" })
}

// ---------------------------------------------------------------------------
// Adapted-model section
// ---------------------------------------------------------------------------

pub(crate) fn encode_models(w: &mut ByteWriter, models: &[(ObjectId, Arc<AdaptedModel>)]) {
    let mut sorted: Vec<&(ObjectId, Arc<AdaptedModel>)> = models.iter().collect();
    sorted.sort_unstable_by_key(|&&(id, _)| id);
    w.u64(sorted.len() as u64);
    for &(id, ref model) in sorted {
        w.u32(id);
        encode_adapted(w, model);
    }
}

pub(crate) fn decode_models(
    r: &mut ByteReader<'_>,
    db: &TrajectoryDatabase,
) -> Result<Vec<(ObjectId, Arc<AdaptedModel>)>, StoreError> {
    r.set_context("adapted models");
    let num_states = db.state_space().len();
    let known: FxHashSet<ObjectId> = db.objects().iter().map(|o| o.id()).collect();
    let n = r.count("adapted models", 12)?;
    let mut models = Vec::with_capacity(n);
    let mut prev: Option<ObjectId> = None;
    for _ in 0..n {
        let id = r.u32()?;
        if prev.is_some_and(|p| p >= id) {
            return Err(StoreError::Malformed {
                context: "adapted models not strictly increasing",
            });
        }
        if !known.contains(&id) {
            return Err(StoreError::Malformed {
                context: "adapted model references unknown object",
            });
        }
        prev = Some(id);
        models.push((id, Arc::new(decode_adapted(r, num_states)?)));
    }
    Ok(models)
}
