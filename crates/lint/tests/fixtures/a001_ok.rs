//! A001 positive fixture: allocations sized from a `count`-checked value, a
//! literal, or carrying an explicit waiver. Must produce zero findings.

fn decode_list(r: &mut ByteReader<'_>) -> Result<Vec<u64>, StoreError> {
    let n = r.count("list entries", 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}

fn fixed_size() -> Vec<u8> {
    Vec::with_capacity(4096)
}

fn waived_derived_size(r: &mut ByteReader<'_>) -> Result<Vec<u8>, StoreError> {
    let span = r.u32()? as usize;
    if span > r.remaining() {
        return Err(StoreError::Truncated { context: "span" });
    }
    // lint: allow(A001) span is pre-checked against remaining() directly above
    let out = Vec::with_capacity(span);
    Ok(out)
}
