//! Effectiveness of the model adaptation (Figure 12 of the paper).
//!
//! The experiment measures how well different uncertainty models predict the
//! *true* (held-out) position of an object in between its observations. For
//! every timestamp the model under test yields a probability distribution over
//! states; the error is the expected distance between the predicted state and
//! the ground-truth position. Five models are compared:
//!
//! | label | model |
//! |-------|-------|
//! | `NO`  | a-priori chain propagated from the first observation only |
//! | `F`   | forward-only adaptation (all past observations) |
//! | `FB`  | forward–backward adaptation (all observations) — the paper's approach |
//! | `U`   | uniform distribution over all reachable states (cylinder/bead-style approximations [13, 16]) |
//! | `FBU` | forward–backward adaptation with uniform (unlearned) transition probabilities |

use crate::ObjectId;
use ust_markov::{AdaptedModel, MarkovModel, ModelAdaptation, SparseDist, Timestamp};
use ust_spatial::{Point, StateSpace};
use ust_trajectory::{Trajectory, UncertainObject};

/// The uncertainty-model variants compared in Figure 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelVariant {
    /// A-priori model, first observation only ("NO").
    NoAdaptation,
    /// Forward-only adaptation ("F").
    ForwardOnly,
    /// Full forward–backward adaptation ("FB").
    ForwardBackward,
    /// Uniform distribution over the reachable states ("U").
    UniformReachable,
    /// Forward–backward adaptation over a uniform-transition chain ("FBU").
    ForwardBackwardUniform,
}

impl ModelVariant {
    /// All variants in the order they appear in Figure 12.
    pub const ALL: [ModelVariant; 5] = [
        ModelVariant::NoAdaptation,
        ModelVariant::ForwardOnly,
        ModelVariant::ForwardBackward,
        ModelVariant::UniformReachable,
        ModelVariant::ForwardBackwardUniform,
    ];

    /// The short label used in the paper's plot.
    pub fn label(&self) -> &'static str {
        match self {
            ModelVariant::NoAdaptation => "NO",
            ModelVariant::ForwardOnly => "F",
            ModelVariant::ForwardBackward => "FB",
            ModelVariant::UniformReachable => "U",
            ModelVariant::ForwardBackwardUniform => "FBU",
        }
    }
}

/// Expected distance between a predicted state distribution and the true
/// position: `Σ_s P(s) · d(pos(s), truth)`.
pub fn expected_error(dist: &SparseDist, space: &StateSpace, truth: &Point) -> f64 {
    dist.iter().map(|(s, p)| p * space.position(s).dist(truth)).sum()
}

/// Per-timestamp prediction errors of one model variant for one object.
#[derive(Debug, Clone)]
pub struct ObjectErrorSeries {
    /// The evaluated object.
    pub object: ObjectId,
    /// The model variant.
    pub variant: ModelVariant,
    /// `(timestamp, expected error)` pairs over the object's covered interval.
    pub errors: Vec<(Timestamp, f64)>,
}

impl ObjectErrorSeries {
    /// Mean error over all evaluated timestamps.
    pub fn mean_error(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().map(|&(_, e)| e).sum::<f64>() / self.errors.len() as f64
    }
}

/// Evaluates one model variant for one object against its ground truth.
///
/// The object's own discarded positions serve as ground truth (leave-one-out:
/// the evaluated object's trajectory was not used to *train* the shared model
/// when the dataset generator is configured accordingly).
pub fn evaluate_variant(
    model: &MarkovModel,
    object: &UncertainObject,
    ground_truth: &Trajectory,
    space: &StateSpace,
    variant: ModelVariant,
) -> Result<ObjectErrorSeries, ust_markov::AdaptError> {
    let observations = object.observation_pairs();
    let adapted: Option<AdaptedModel> = match variant {
        ModelVariant::NoAdaptation => None,
        ModelVariant::ForwardBackwardUniform => {
            Some(ModelAdaptation::with_uniform_transitions().adapt(model, &observations)?)
        }
        _ => Some(ModelAdaptation::new().adapt(model, &observations)?),
    };
    let start = object.first_time();
    let end = object.last_time();
    let first_state = observations[0].1;
    let mut errors = Vec::with_capacity((end - start) as usize + 1);
    for t in start..=end {
        let truth = match ground_truth.position_at(t, space) {
            Some(p) => p,
            None => continue,
        };
        let dist: SparseDist = match (variant, &adapted) {
            (ModelVariant::NoAdaptation, _) => model.propagate_steps(
                &SparseDist::delta(first_state),
                start,
                (t - start) as usize,
            ),
            (ModelVariant::ForwardOnly, Some(a)) => {
                a.forward_at(t).cloned().unwrap_or_default()
            }
            (ModelVariant::UniformReachable, Some(a)) => {
                SparseDist::uniform(a.support_at(t))
            }
            (_, Some(a)) => a.posterior_at(t).cloned().unwrap_or_default(),
            _ => unreachable!("adapted model exists for all adapted variants"),
        };
        errors.push((t, expected_error(&dist, space, &truth)));
    }
    Ok(ObjectErrorSeries { object: object.id(), variant, errors })
}

/// Evaluates all five variants for one object.
pub fn evaluate_all_variants(
    model: &MarkovModel,
    object: &UncertainObject,
    ground_truth: &Trajectory,
    space: &StateSpace,
) -> Result<Vec<ObjectErrorSeries>, ust_markov::AdaptError> {
    ModelVariant::ALL
        .iter()
        .map(|&v| evaluate_variant(model, object, ground_truth, space, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_markov::CsrMatrix;

    /// Line of 7 states; the object walks right at every tic.
    fn setup() -> (StateSpace, MarkovModel, UncertainObject, Trajectory) {
        let space = StateSpace::from_points((0..7).map(|i| Point::new(i as f64, 0.0)).collect());
        // Strongly biased walk to the right with a small chance of waiting.
        let rows = (0..7i64)
            .map(|i| {
                let mut row = vec![(i as u32, 0.2)];
                if i < 6 {
                    row.push((i as u32 + 1, 0.8));
                }
                row
            })
            .collect();
        let model = MarkovModel::homogeneous(CsrMatrix::stochastic_from_weights(rows));
        // True motion: one step right per tic, observed at t=0 and t=6.
        let truth = Trajectory::new(0, (0..7).collect());
        let object = UncertainObject::from_pairs(9, vec![(0, 0), (6, 6)]).unwrap();
        (space, model, object, truth)
    }

    #[test]
    fn expected_error_of_a_point_mass_is_the_distance() {
        let space = StateSpace::from_points(vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0)]);
        let d = SparseDist::delta(1);
        assert!((expected_error(&d, &space, &Point::new(0.0, 0.0)) - 5.0).abs() < 1e-12);
        let mix = SparseDist::from_pairs(vec![(0, 0.5), (1, 0.5)]);
        assert!((expected_error(&mix, &space, &Point::new(0.0, 0.0)) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn variant_labels_are_unique() {
        let labels: Vec<&str> = ModelVariant::ALL.iter().map(|v| v.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), 5);
        assert_eq!(labels, dedup);
    }

    #[test]
    fn forward_backward_beats_the_unadapted_model() {
        let (space, model, object, truth) = setup();
        let series = evaluate_all_variants(&model, &object, &truth, &space).unwrap();
        let mean = |v: ModelVariant| {
            series.iter().find(|s| s.variant == v).unwrap().mean_error()
        };
        let fb = mean(ModelVariant::ForwardBackward);
        let no = mean(ModelVariant::NoAdaptation);
        let f = mean(ModelVariant::ForwardOnly);
        let u = mean(ModelVariant::UniformReachable);
        // The orderings highlighted by Figure 12.
        assert!(fb <= f + 1e-9, "FB ({fb}) should not be worse than forward-only ({f})");
        assert!(fb <= no + 1e-9, "FB ({fb}) should not be worse than no adaptation ({no})");
        assert!(fb <= u + 1e-9, "FB ({fb}) should not be worse than uniform ({u})");
        // Errors vanish at the observation endpoints for all adapted variants.
        let fb_series = series.iter().find(|s| s.variant == ModelVariant::ForwardBackward).unwrap();
        assert!(fb_series.errors.first().unwrap().1 < 1e-9);
        assert!(fb_series.errors.last().unwrap().1 < 1e-9);
    }

    #[test]
    fn per_variant_series_cover_the_whole_interval() {
        let (space, model, object, truth) = setup();
        let s = evaluate_variant(&model, &object, &truth, &space, ModelVariant::UniformReachable)
            .unwrap();
        assert_eq!(s.errors.len(), 7);
        assert_eq!(s.object, 9);
        assert_eq!(s.errors[0].0, 0);
        assert_eq!(s.errors[6].0, 6);
    }

    #[test]
    fn fbu_is_consistent_but_generally_worse_than_fb() {
        let (space, model, object, truth) = setup();
        let fb = evaluate_variant(&model, &object, &truth, &space, ModelVariant::ForwardBackward)
            .unwrap()
            .mean_error();
        let fbu = evaluate_variant(
            &model,
            &object,
            &truth,
            &space,
            ModelVariant::ForwardBackwardUniform,
        )
        .unwrap()
        .mean_error();
        // The learned transition probabilities strongly favour the true
        // rightward motion, so FB must not be worse than FBU here.
        assert!(fb <= fbu + 1e-9, "FB ({fb}) vs FBU ({fbu})");
    }
}
