//! The sampling-based query engine (Sections 3.3, 5 and 6 of the paper).
//!
//! Evaluation of a query proceeds in three phases:
//!
//! 1. **Filter** — the UST-tree prunes objects that can never be a nearest
//!    neighbor during the query interval, producing the ∀-candidate set
//!    `C(q)` and the influence set `I(q)`.
//! 2. **Model adaptation ("TS")** — for every remaining object the
//!    forward–backward adaptation turns the a-priori chain plus observations
//!    into the a-posteriori chain. Adapted models are cached, since "this
//!    phase can be performed once and used for all queries"; cold objects are
//!    fanned out across [`EngineConfig::adaptation_threads`] workers through
//!    the stampede-free [`crate::prepare`] subsystem.
//! 3. **Refinement ("FA"/"EX"/"SA")** — possible worlds are sampled from the
//!    a-posteriori models; in each world the certain-trajectory NN primitives
//!    decide which objects are nearest neighbors at which query timestamps;
//!    averaging over worlds yields the probability estimates that are
//!    compared against `τ`.

use crate::govern::{
    BudgetGauge, QueryBudget, QueryPhase, Verdict, FILTER_CHECK_INTERVAL, WORLD_CHECK_INTERVAL,
};
use crate::pcnn::{vertical_timesets_governed, PcnnConfig, PcnnResult, WorldSet};
use crate::prepare::{
    adapt_batch_governed, parallel_map_ordered, AdaptationCache, CacheStats, PrepareOutcome,
};
use crate::query::{Query, QueryError};
use crate::results::{ObjectProbability, PcnnObjectResult, PcnnOutcome, QueryOutcome, QueryStats};
use crate::ObjectId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rustc_hash::FxHashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ust_index::{IndexBuildStats, UstTree, UstTreeConfig};
use ust_markov::{AdaptedModel, ModelAdaptation};
use ust_sampling::{WorldBlock, WorldSampler, WORLD_BLOCK_WIDTH};
use ust_spatial::Point;
use ust_trajectory::TrajectoryDatabase;

/// Configuration of the query engine.
///
/// Not `Copy` since the governance work: the [`QueryBudget`] can hold an
/// [`Arc`]-backed cancel token. Clone it where a second owned copy is needed.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of possible worlds sampled per query (the paper uses 10 000
    /// samples per object).
    pub num_samples: usize,
    /// RNG seed, so query results are reproducible.
    pub seed: u64,
    /// Whether to build and use the UST-tree filter step. Disabling it turns
    /// every object overlapping the query interval into an influence object
    /// (the ablation discussed in DESIGN.md).
    pub use_index: bool,
    /// Report only maximal qualifying timestamp sets from PCNN queries.
    pub maximal_pcnn_sets: bool,
    /// Number of worker threads the model-adaptation ("TS") phase fans cold
    /// objects out across. `0` (the default) uses the machine's available
    /// parallelism; `1` reproduces the serial adaptation loop bit-for-bit.
    /// Query *results* are identical for every setting — adaptation is
    /// deterministic per object — only wall-clock time changes.
    pub adaptation_threads: usize,
    /// Number of worker threads the PCNN lattice phase fans candidate objects
    /// out across (each candidate's Apriori lattice is mined independently).
    /// `0` (the default) uses the machine's available parallelism; `1` is the
    /// serial loop. Per-object results are merged back in ascending object
    /// order, so query output is byte-identical at every thread count.
    pub pcnn_threads: usize,
    /// Number of worker threads the UST-tree build (the filter-phase index)
    /// fans per-object diamond construction out across. `0` (the default)
    /// uses the machine's available parallelism; `1` is the exact serial
    /// build. The built index is byte-identical at every setting (see
    /// [`ust_index::UstTreeConfig::build_threads`]); only build wall-clock
    /// time changes.
    pub index_build_threads: usize,
    /// The [`QueryBudget`] every evaluation on this engine runs under by
    /// default. The default is unlimited — exactly the pre-governance
    /// behaviour. The `*_with_budget` entry points override it per call; the
    /// degradation contract is documented in [`crate::govern`].
    pub budget: QueryBudget,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_samples: 10_000,
            seed: 0,
            use_index: true,
            maximal_pcnn_sets: false,
            adaptation_threads: 0,
            pcnn_threads: 0,
            index_build_threads: 0,
            budget: QueryBudget::default(),
        }
    }
}

impl EngineConfig {
    /// Convenience constructor overriding the number of sampled worlds.
    pub fn with_samples(num_samples: usize) -> Self {
        EngineConfig { num_samples, ..Default::default() }
    }

    /// Returns the configuration with the TS-phase thread count overridden
    /// (builder style).
    pub fn with_adaptation_threads(self, adaptation_threads: usize) -> Self {
        EngineConfig { adaptation_threads, ..self }
    }

    /// Returns the configuration with the PCNN lattice thread count
    /// overridden (builder style).
    pub fn with_pcnn_threads(self, pcnn_threads: usize) -> Self {
        EngineConfig { pcnn_threads, ..self }
    }

    /// Returns the configuration with the UST-tree build thread count
    /// overridden (builder style).
    pub fn with_index_build_threads(self, index_build_threads: usize) -> Self {
        EngineConfig { index_build_threads, ..self }
    }

    /// Returns the configuration with the default query budget overridden
    /// (builder style).
    #[must_use]
    pub fn with_budget(self, budget: QueryBudget) -> Self {
        EngineConfig { budget, ..self }
    }
}

/// Adapted a-posteriori models of a set of objects, as `(id, model)` pairs —
/// the working set handed from the preparation ("TS") phase to the samplers.
pub type AdaptedModels = Vec<(ObjectId, Arc<AdaptedModel>)>;

/// The probabilistic NN query engine over one trajectory database.
///
/// The UST-tree is held behind an [`Arc`], so one (potentially paper-scale)
/// build can be shared across many engines and threads without a clone:
/// build once, then hand [`QueryEngine::shared_index`] to
/// [`QueryEngine::with_index`] on every further engine.
pub struct QueryEngine<'a> {
    db: &'a TrajectoryDatabase,
    index: Option<Arc<UstTree>>,
    config: EngineConfig,
    cache: AdaptationCache,
}

impl std::fmt::Debug for QueryEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("objects", &self.db.objects().len())
            .field("indexed", &self.index.is_some())
            .field("config", &self.config)
            .field("cache", &self.cache)
            .finish()
    }
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine, building the UST-tree if the configuration enables
    /// the filter step (the build fans out across
    /// [`EngineConfig::index_build_threads`] workers).
    pub fn new(db: &'a TrajectoryDatabase, config: EngineConfig) -> Self {
        let tree_cfg =
            UstTreeConfig { build_threads: config.index_build_threads, ..Default::default() };
        Self::with_index_config(db, config, &tree_cfg)
    }

    /// Creates an engine reusing a pre-built UST-tree. The `Arc` makes the
    /// share explicit: any number of engines (across threads) can serve
    /// queries from the same build.
    pub fn with_index(
        db: &'a TrajectoryDatabase,
        index: Arc<UstTree>,
        config: EngineConfig,
    ) -> Self {
        QueryEngine { db, index: Some(index), config, cache: AdaptationCache::new() }
    }

    /// Creates an engine with a custom UST-tree configuration.
    pub fn with_index_config(
        db: &'a TrajectoryDatabase,
        config: EngineConfig,
        tree_cfg: &UstTreeConfig,
    ) -> Self {
        let index =
            if config.use_index { Some(Arc::new(UstTree::build_with(db, tree_cfg))) } else { None };
        QueryEngine { db, index, config, cache: AdaptationCache::new() }
    }

    /// The underlying database.
    pub fn database(&self) -> &TrajectoryDatabase {
        self.db
    }

    /// Ingested-observation statistics of the underlying database (see
    /// [`ust_trajectory::DatabaseSummary`]): object and observation counts,
    /// the per-object observation spread and the data-defined time horizon.
    pub fn database_summary(&self) -> ust_trajectory::DatabaseSummary {
        self.db.summary()
    }

    /// The UST-tree, if the filter step is enabled.
    pub fn index(&self) -> Option<&UstTree> {
        self.index.as_deref()
    }

    /// A shareable handle to the UST-tree (if the filter step is enabled),
    /// for building further engines over the same index without re-building:
    /// `QueryEngine::with_index(db, engine.shared_index().unwrap(), cfg)`.
    pub fn shared_index(&self) -> Option<Arc<UstTree>> {
        self.index.clone()
    }

    /// Observability counters of the UST-tree build (wall time, diamond
    /// count, reach-memo hits, peak BFS frontier), if the filter step is
    /// enabled. The bench harness surfaces these in its report meta.
    pub fn index_build_stats(&self) -> Option<&IndexBuildStats> {
        self.index.as_deref().map(UstTree::build_stats)
    }

    /// Persists this engine's state — the database, the UST-tree (if built)
    /// and every adapted model currently cached — as an on-disk store (see
    /// [`ust_persist`]). A later [`EngineStore::load`](crate::EngineStore)
    /// skips the index build and the TS phase for the stored objects
    /// entirely. The write stages through a `<path>.tmp` sibling and lands
    /// with an atomic rename, so a crash mid-save never clobbers (or
    /// truncates) a store already at `path`.
    pub fn save_store(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<ust_persist::StoreStats, ust_persist::StoreError> {
        let models = self.cache.snapshot_models();
        ust_persist::write_store(
            path,
            &ust_persist::StoreContents {
                database: self.db,
                index: self.index.as_deref(),
                models: &models,
            },
        )
    }

    /// Seeds the adaptation cache with already-adapted models (typically the
    /// MODELS section of a loaded store). Preloaded objects are warm on
    /// first touch; cache statistics are not affected (see
    /// [`AdaptationCache::preload`]).
    pub fn preload_models(
        &self,
        models: impl IntoIterator<Item = (ObjectId, Arc<AdaptedModel>)>,
    ) {
        self.cache.preload(models);
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Discards all cached a-posteriori models (useful for benchmarking the
    /// adaptation phase in isolation).
    pub fn clear_model_cache(&self) {
        self.cache.clear();
    }

    /// Number of currently cached a-posteriori models.
    pub fn cached_models(&self) -> usize {
        self.cache.len()
    }

    /// Lifetime hit/cold counters of the model cache (see [`CacheStats`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    // ------------------------------------------------------------------
    // Model adaptation ("TS" phase)
    // ------------------------------------------------------------------

    /// Runs the forward–backward adaptation of one object, bypassing the
    /// cache. This is the closure handed to the anti-stampede slots.
    fn adapt_uncached(&self, id: ObjectId) -> Result<AdaptedModel, QueryError> {
        // Chaos hook: lets the chaos suite crash a live adaptation worker and
        // prove the claim-release path with real threads (see tests/chaos.rs
        // at the workspace root). Disarmed, this is one relaxed atomic load.
        ust_fault::panic_point("core.adapt.worker");
        let object = self.db.object(id).ok_or(QueryError::UnknownObject { object: id })?;
        let model = self.db.model_for(id);
        ModelAdaptation::new()
            .adapt(model.as_ref(), &object.observation_pairs())
            .map_err(|error| QueryError::Adaptation { object: id, error })
    }

    /// Returns (building and caching if necessary) the a-posteriori model of
    /// an object.
    ///
    /// Concurrent calls for the same uncached object never duplicate the
    /// forward–backward work: the first caller adapts, later callers block on
    /// its result (see [`crate::prepare::AdaptationCache`]).
    pub fn adapted_model(&self, id: ObjectId) -> Result<Arc<AdaptedModel>, QueryError> {
        self.cache.get_or_adapt(id, || self.adapt_uncached(id)).map(|(model, _)| model)
    }

    /// Adapts (or fetches from the cache) the models of the given objects.
    ///
    /// Cold objects are fanned out across
    /// [`adaptation_threads`](EngineConfig::adaptation_threads) scoped worker
    /// threads; warm objects are answered from the cache and excluded from the
    /// reported [`PrepareOutcome::cold_time`]. The returned model order always
    /// matches `ids`, independent of the thread count.
    pub fn prepare_objects(&self, ids: &[ObjectId]) -> Result<PrepareOutcome, QueryError> {
        self.prepare_objects_with_threads(ids, self.config.adaptation_threads)
    }

    /// [`prepare_objects`](Self::prepare_objects) with an explicit TS-phase
    /// thread count, overriding the engine configuration for this call (used
    /// by the benchmarks to measure a serial baseline on the same engine and
    /// UST-tree as the parallel measurement).
    pub fn prepare_objects_with_threads(
        &self,
        ids: &[ObjectId],
        threads: usize,
    ) -> Result<PrepareOutcome, QueryError> {
        let gauge = self.config.budget.start();
        self.prepare_objects_governed(ids, threads, &gauge)
    }

    /// The TS phase under an already-started [`BudgetGauge`]: every worker
    /// polls the gauge once per cold object before adapting, so a cancel or
    /// deadline breach surfaces as a typed error without poisoning the cache
    /// (transient errors release the anti-stampede claim instead of being
    /// cached, see [`AdaptationCache::get_or_adapt`]).
    fn prepare_objects_governed(
        &self,
        ids: &[ObjectId],
        threads: usize,
        gauge: &BudgetGauge,
    ) -> Result<PrepareOutcome, QueryError> {
        let mut slots: Vec<Option<Arc<AdaptedModel>>> = Vec::new();
        slots.resize_with(ids.len(), || None);
        let mut cold: Vec<(usize, ObjectId)> = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            match self.cache.peek(id) {
                Some(model) => slots[i] = Some(model),
                None => cold.push((i, id)),
            }
        }
        let mut cold_adaptations = 0usize;
        let mut cold_time = Duration::ZERO;
        if !cold.is_empty() {
            let cold_ids: Vec<ObjectId> = cold.iter().map(|&(_, id)| id).collect();
            // lint: allow(T001) cold_time is QueryStats observability; it never feeds results
            let start = Instant::now();
            let results = adapt_batch_governed(
                &self.cache,
                &cold_ids,
                threads,
                |id| self.adapt_uncached(id),
                gauge,
            );
            cold_time = start.elapsed();
            for (&(i, _), result) in cold.iter().zip(results) {
                let (model, was_cold) = result?;
                cold_adaptations += usize::from(was_cold);
                slots[i] = Some(model);
            }
        }
        let models: AdaptedModels = ids
            .iter()
            .zip(slots)
            .map(|(&id, slot)| (id, slot.expect("every id resolved above")))
            .collect();
        let cache_hits = ids.len() - cold_adaptations;
        Ok(PrepareOutcome { models, cache_hits, cold_adaptations, cold_time })
    }

    /// Adapts the models of *all* database objects (the full "TS" phase of the
    /// experiments).
    pub fn prepare_all(&self) -> Result<PrepareOutcome, QueryError> {
        let ids: Vec<ObjectId> = self.db.objects().iter().map(|o| o.id()).collect();
        self.prepare_objects(&ids)
    }

    // ------------------------------------------------------------------
    // Filter step
    // ------------------------------------------------------------------

    /// Runs the filter step for a 1-NN query: returns `(candidates, influencers)`.
    ///
    /// With the UST-tree enabled this is the `dmin`/`dmax` pruning of
    /// Section 6; without it, every object covering (overlapping) the query
    /// interval is a candidate (influencer).
    pub fn filter(&self, query: &Query) -> Result<(Vec<ObjectId>, Vec<ObjectId>), QueryError> {
        self.filter_knn(query, 1)
    }

    /// The filter step for k-NN queries (the pruning distance is the k-th
    /// smallest `dmax` per timestamp).
    pub fn filter_knn(
        &self,
        query: &Query,
        k: usize,
    ) -> Result<(Vec<ObjectId>, Vec<ObjectId>), QueryError> {
        let gauge = self.config.budget.start();
        self.filter_knn_governed(query, k, &gauge)
    }

    /// The filter step under an already-started [`BudgetGauge`]: one
    /// query-start checkpoint (where a zero deadline or an already-cancelled
    /// token trips deterministically, before any phase runs), one poll every
    /// [`FILTER_CHECK_INTERVAL`] streamed diamonds, and the `max_diamonds`
    /// cap. Pruning cannot degrade — a partial filter pass would silently
    /// drop result objects — so any breach here is a typed error.
    fn filter_knn_governed(
        &self,
        query: &Query,
        k: usize,
        gauge: &BudgetGauge,
    ) -> Result<(Vec<ObjectId>, Vec<ObjectId>), QueryError> {
        query.validate()?;
        gauge.check(QueryPhase::Filter)?;
        let times = query.times();
        match &self.index {
            Some(tree) => {
                let cap = gauge.max_diamonds();
                let pruning = tree.try_prune_knn(
                    times,
                    |t| query.position_at(t).expect("query validated above"),
                    k,
                    |streamed| {
                        if let Some(cap) = cap {
                            if streamed > cap {
                                return Err(gauge.exhausted(QueryPhase::Filter, "diamonds", cap));
                            }
                        }
                        if streamed.is_multiple_of(FILTER_CHECK_INTERVAL) {
                            gauge.check(QueryPhase::Filter)?;
                        }
                        Ok(())
                    },
                )?;
                Ok((pruning.candidates, pruning.influencers))
            }
            None => {
                let from = query.start();
                let to = query.end();
                let mut candidates = self.db.objects_covering(from, to);
                let mut influencers = self.db.objects_overlapping(from, to);
                candidates.sort_unstable();
                influencers.sort_unstable();
                Ok((candidates, influencers))
            }
        }
    }

    // ------------------------------------------------------------------
    // Refinement (Monte-Carlo sampling)
    // ------------------------------------------------------------------

    /// Samples possible worlds over the influence set and collects, for every
    /// candidate, its transposed [`WorldSet`] (per query timestamp, the bitset
    /// of worlds in which the candidate is a NN there) and, for every
    /// influence object, the number of worlds with at least one NN timestamp.
    ///
    /// Worlds are drawn in blocks of [`WORLD_BLOCK_WIDTH`] = 64 into a
    /// structure-of-arrays [`WorldBlock`]: each transition is an O(1)
    /// alias-table draw (`ust-markov`), and for every `(object, timestamp)`
    /// the 64 worlds of a block sit in one contiguous row. The NN evaluation
    /// accumulates one `u64` of hit bits per candidate per timestamp per
    /// block and lands it with a single [`WorldSet::or_word`], and per-object
    /// ∃-membership is one `count_ones` per block instead of per-world
    /// bookkeeping. The block width equals [`WORLD_CHECK_INTERVAL`], so
    /// budget checkpoints fire at exactly the world indices the per-world
    /// loop probed at, and degraded runs stop at the same block boundaries.
    fn sample(
        &self,
        query: &Query,
        candidates: &[ObjectId],
        influencers: &[ObjectId],
        k: usize,
        gauge: &BudgetGauge,
    ) -> Result<SamplingOutput, QueryError> {
        let prepared =
            self.prepare_objects_governed(influencers, self.config.adaptation_threads, gauge)?;
        let adaptation_time = prepared.cold_time;
        let cache_hits = prepared.cache_hits;
        let cold_adaptations = prepared.cold_adaptations;
        let sampler = WorldSampler::from_models(prepared.models);
        let times = query.times();
        let space = self.db.state_space();
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // lint: allow(T001) sampling_time is QueryStats observability; it never feeds results
        let start = Instant::now();
        let requested = self.config.num_samples;
        // A `max_worlds` cap truncates the run up front: the first `cap`
        // worlds of the capped run are bit-identical to the first `cap`
        // worlds of an uncapped one, so the estimate is unbiased — just
        // coarser, which the `degraded` flag reports.
        let mut degraded = false;
        let mut num_worlds = requested;
        if let Some(cap) = gauge.max_worlds() {
            if cap < num_worlds {
                num_worlds = cap;
                degraded = true;
            }
        }
        // One vertical world-set per candidate, in ascending object order (the
        // order PCNN results are reported in).
        let mut sorted_candidates = candidates.to_vec();
        sorted_candidates.sort_unstable();
        let mut candidate_worlds: Vec<(ObjectId, WorldSet)> = sorted_candidates
            .iter()
            .map(|&id| (id, WorldSet::new(times.len(), num_worlds)))
            .collect();
        let candidate_slot: FxHashMap<ObjectId, usize> =
            sorted_candidates.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        // Per world-position bookkeeping (world positions = sampler order =
        // `influencers` order), so the hot loop indexes flat vectors instead
        // of hashing object ids.
        let world_ids: Vec<ObjectId> = sampler.object_ids().collect();
        let slot_of: Vec<Option<usize>> =
            world_ids.iter().map(|id| candidate_slot.get(id).copied()).collect();
        let mut exists_counts: Vec<usize> = vec![0; world_ids.len()];
        let query_positions: Vec<Point> = times
            .iter()
            .map(|&t| query.position_at(t).expect("query validated"))
            .collect();
        // Scratch: distances of the objects alive at the current timestamp,
        // as (distance², world position) pairs.
        let mut alive: Vec<(f64, usize)> = Vec::with_capacity(world_ids.len());

        // States past the last query timestamp are never read, so only the
        // walk prefixes up to `query.end()` are materialised (the tail steps
        // still burn their RNG draws, keeping worlds bit-identical).
        let horizon = query.end();
        // One 64-world SoA block, refilled per iteration; its width matching
        // the budget-probe interval keeps checkpoint placement identical to
        // the retired per-world loop.
        const _: () = assert!(WORLD_BLOCK_WIDTH == WORLD_CHECK_INTERVAL);
        let mut block = WorldBlock::for_sampler(&sampler, horizon, WORLD_BLOCK_WIDTH);
        // Per block: one word of candidate hits per (candidate, timestamp)
        // and one word of ∃-membership per influence object.
        let mut hit_words: Vec<u64> = vec![0; sorted_candidates.len()];
        let mut exists_words: Vec<u64> = vec![0; world_ids.len()];
        let mut worlds_done = 0usize;
        while worlds_done < num_worlds {
            // Deadline breaches degrade: the worlds sampled so far are a
            // valid (smaller) Monte-Carlo run. Cancellation always errors.
            if worlds_done > 0 {
                match gauge.probe(QueryPhase::Sampling)? {
                    Verdict::Continue => {}
                    Verdict::Degrade => {
                        degraded = true;
                        break;
                    }
                }
            }
            let count = WORLD_BLOCK_WIDTH.min(num_worlds - worlds_done);
            block.fill(&mut rng, count);
            let word_index = worlds_done / 64;
            // Per-object world rows of the current timestamp, hoisted out of
            // the 64-world scan.
            let mut rows: Vec<Option<&[u32]>> = Vec::with_capacity(world_ids.len());
            for (i, &t) in times.iter().enumerate() {
                if k == 0 {
                    break;
                }
                let q = &query_positions[i];
                hit_words.fill(0);
                rows.clear();
                rows.extend((0..world_ids.len()).map(|j| block.states_at(j, t)));
                for w in 0..count {
                    alive.clear();
                    for (j, row) in rows.iter().enumerate() {
                        if let Some(row) = row {
                            alive.push((space.position(row[w]).dist2(q), j));
                        }
                    }
                    if alive.is_empty() {
                        continue;
                    }
                    // NN membership cutoff: the k-th smallest distance; every
                    // object at or below it is in the kNN set (boundary ties
                    // included), matching the tie semantics of
                    // `ust_trajectory::nn`.
                    let cutoff = if k == 1 {
                        alive.iter().map(|&(d, _)| d).fold(f64::INFINITY, f64::min)
                    } else {
                        let nth = (k - 1).min(alive.len() - 1);
                        alive.select_nth_unstable_by(nth, |a, b| a.0.total_cmp(&b.0));
                        alive[nth].0
                    };
                    let bit = 1u64 << w;
                    for &(d, j) in &alive {
                        if d <= cutoff {
                            exists_words[j] |= bit;
                            if let Some(slot) = slot_of[j] {
                                hit_words[slot] |= bit;
                            }
                        }
                    }
                }
                for (slot, &bits) in hit_words.iter().enumerate() {
                    if bits != 0 {
                        candidate_worlds[slot].1.or_word(i, word_index, bits);
                    }
                }
            }
            for (j, word) in exists_words.iter_mut().enumerate() {
                exists_counts[j] += word.count_ones() as usize;
                *word = 0;
            }
            worlds_done += count;
        }
        let sampling_time = start.elapsed();
        if worlds_done < num_worlds {
            // Shrink every candidate's world-set to the worlds actually
            // sampled, so supports and probability denominators agree.
            for (_, worlds) in &mut candidate_worlds {
                worlds.truncate_worlds(worlds_done);
            }
        }

        Ok(SamplingOutput {
            candidate_worlds,
            exists_counts: world_ids.into_iter().zip(exists_counts).collect(),
            worlds: worlds_done,
            worlds_requested: requested,
            degraded,
            adaptation_time,
            cache_hits,
            cold_adaptations,
            sampling_time,
        })
    }

    fn stats_from(
        &self,
        candidates: &[ObjectId],
        influencers: &[ObjectId],
        sampling: &SamplingOutput,
        gauge: &BudgetGauge,
        filter_time: Duration,
    ) -> QueryStats {
        QueryStats {
            candidates: candidates.len(),
            influencers: influencers.len(),
            adaptation_time: sampling.adaptation_time,
            cache_hits: sampling.cache_hits,
            cold_adaptations: sampling.cold_adaptations,
            sampling_time: sampling.sampling_time,
            worlds: sampling.worlds,
            filter_time,
            budget_checkpoints: gauge.checkpoints() as usize,
            worlds_requested: sampling.worlds_requested,
            degraded: sampling.degraded,
            ..Default::default()
        }
    }

    // ------------------------------------------------------------------
    // Query semantics
    // ------------------------------------------------------------------

    /// P∀NNQ (Definition 2): objects that are the nearest neighbor of `q` at
    /// every timestamp of `T` with probability at least `tau`.
    pub fn pforall_nn(&self, query: &Query, tau: f64) -> Result<QueryOutcome, QueryError> {
        self.pforall_knn(query, 1, tau)
    }

    /// P∃NNQ (Definition 1): objects that are the nearest neighbor of `q` at
    /// some timestamp of `T` with probability at least `tau`.
    pub fn pexists_nn(&self, query: &Query, tau: f64) -> Result<QueryOutcome, QueryError> {
        self.pexists_knn(query, 1, tau)
    }

    /// [`pforall_nn`](Self::pforall_nn) under a per-call [`QueryBudget`]
    /// overriding the engine default.
    pub fn pforall_nn_with_budget(
        &self,
        query: &Query,
        tau: f64,
        budget: &QueryBudget,
    ) -> Result<QueryOutcome, QueryError> {
        self.pforall_knn_with_budget(query, 1, tau, budget)
    }

    /// [`pexists_nn`](Self::pexists_nn) under a per-call [`QueryBudget`]
    /// overriding the engine default.
    pub fn pexists_nn_with_budget(
        &self,
        query: &Query,
        tau: f64,
        budget: &QueryBudget,
    ) -> Result<QueryOutcome, QueryError> {
        self.pexists_knn_with_budget(query, 1, tau, budget)
    }

    /// P∀kNNQ (Section 8): objects that belong to the k-NN set of `q` at every
    /// timestamp of `T` with probability at least `tau`.
    pub fn pforall_knn(
        &self,
        query: &Query,
        k: usize,
        tau: f64,
    ) -> Result<QueryOutcome, QueryError> {
        self.pforall_knn_with_budget(query, k, tau, &self.config.budget)
    }

    /// [`pforall_knn`](Self::pforall_knn) under a per-call [`QueryBudget`]
    /// overriding the engine default. The degradation contract is documented
    /// in [`crate::govern`].
    pub fn pforall_knn_with_budget(
        &self,
        query: &Query,
        k: usize,
        tau: f64,
        budget: &QueryBudget,
    ) -> Result<QueryOutcome, QueryError> {
        Query::validate_threshold(tau)?;
        let gauge = budget.start();
        // lint: allow(T001) filter_time is QueryStats observability; it never feeds results
        let filter_start = Instant::now();
        let (candidates, influencers) = self.filter_knn_governed(query, k, &gauge)?;
        let filter_time = filter_start.elapsed();
        let sampling = self
            .sample(query, &candidates, &influencers, k, &gauge)
            .map_err(|e| enrich_partial(e, &candidates, &influencers, filter_time))?;
        let mut results: Vec<ObjectProbability> = sampling
            .candidate_worlds
            .iter()
            .map(|(object, worlds)| {
                // The ∀ event is one AND-reduction over the candidate's
                // world-set columns — no per-world mask is ever materialised.
                let hits = worlds.forall_support();
                ObjectProbability {
                    object: *object,
                    probability: hits as f64 / sampling.worlds.max(1) as f64,
                }
            })
            .filter(|r| r.probability >= tau && r.probability > 0.0)
            .collect();
        sort_results(&mut results);
        let stats = self.stats_from(&candidates, &influencers, &sampling, &gauge, filter_time);
        Ok(QueryOutcome { results, stats })
    }

    /// P∃kNNQ (Section 8): objects that belong to the k-NN set of `q` at some
    /// timestamp of `T` with probability at least `tau`.
    pub fn pexists_knn(
        &self,
        query: &Query,
        k: usize,
        tau: f64,
    ) -> Result<QueryOutcome, QueryError> {
        self.pexists_knn_with_budget(query, k, tau, &self.config.budget)
    }

    /// [`pexists_knn`](Self::pexists_knn) under a per-call [`QueryBudget`]
    /// overriding the engine default. The degradation contract is documented
    /// in [`crate::govern`].
    pub fn pexists_knn_with_budget(
        &self,
        query: &Query,
        k: usize,
        tau: f64,
        budget: &QueryBudget,
    ) -> Result<QueryOutcome, QueryError> {
        Query::validate_threshold(tau)?;
        let gauge = budget.start();
        // lint: allow(T001) filter_time is QueryStats observability; it never feeds results
        let filter_start = Instant::now();
        let (candidates, influencers) = self.filter_knn_governed(query, k, &gauge)?;
        let filter_time = filter_start.elapsed();
        let sampling = self
            .sample(query, &candidates, &influencers, k, &gauge)
            .map_err(|e| enrich_partial(e, &candidates, &influencers, filter_time))?;
        let mut results: Vec<ObjectProbability> = sampling
            .exists_counts
            .iter()
            .map(|&(object, hits)| ObjectProbability {
                object,
                probability: hits as f64 / sampling.worlds.max(1) as f64,
            })
            .filter(|r| r.probability >= tau && r.probability > 0.0)
            .collect();
        sort_results(&mut results);
        let stats = self.stats_from(&candidates, &influencers, &sampling, &gauge, filter_time);
        Ok(QueryOutcome { results, stats })
    }

    /// PCNNQ (Definition 3, Algorithm 1): per object, the timestamp subsets of
    /// `T` on which it is a ∀-nearest-neighbor with probability at least `tau`.
    pub fn pcnn(&self, query: &Query, tau: f64) -> Result<PcnnOutcome, QueryError> {
        self.pcknn(query, 1, tau)
    }

    /// [`pcnn`](Self::pcnn) under a per-call [`QueryBudget`] overriding the
    /// engine default.
    pub fn pcnn_with_budget(
        &self,
        query: &Query,
        tau: f64,
        budget: &QueryBudget,
    ) -> Result<PcnnOutcome, QueryError> {
        self.pcknn_with_budget(query, 1, tau, budget)
    }

    /// PCkNNQ (Section 8): the continuous query under k-NN semantics.
    ///
    /// Each candidate's lattice is mined vertically
    /// ([`vertical_timesets_governed`]) and the per-object runs are fanned out
    /// across [`pcnn_threads`](EngineConfig::pcnn_threads) scoped workers.
    /// Results are merged back in ascending object order, so the outcome is
    /// byte-identical at every thread count.
    pub fn pcknn(&self, query: &Query, k: usize, tau: f64) -> Result<PcnnOutcome, QueryError> {
        self.pcknn_with_budget(query, k, tau, &self.config.budget)
    }

    /// [`pcknn`](Self::pcknn) under a per-call [`QueryBudget`] overriding the
    /// engine default. A deadline breach during mining degrades — the lattice
    /// stops expanding and the sets validated so far (an exact
    /// under-approximation of the full answer) are returned with
    /// `stats.degraded` set; cancellation is always a typed error.
    pub fn pcknn_with_budget(
        &self,
        query: &Query,
        k: usize,
        tau: f64,
        budget: &QueryBudget,
    ) -> Result<PcnnOutcome, QueryError> {
        Query::validate_threshold(tau)?;
        let gauge = budget.start();
        // lint: allow(T001) filter_time is QueryStats observability; it never feeds results
        let filter_start = Instant::now();
        let (candidates, influencers) = self.filter_knn_governed(query, k, &gauge)?;
        let filter_time = filter_start.elapsed();
        let sampling = self
            .sample(query, &candidates, &influencers, k, &gauge)
            .map_err(|e| enrich_partial(e, &candidates, &influencers, filter_time))?;
        let cfg = if self.config.maximal_pcnn_sets {
            PcnnConfig::maximal(tau)
        } else {
            PcnnConfig::new(tau)
        };
        let times = query.times();
        // lint: allow(T001) mining_time is QueryStats observability; it never feeds results
        let mine_start = Instant::now();
        let lattices: Vec<Result<PcnnResult, QueryError>> = parallel_map_ordered(
            &sampling.candidate_worlds,
            self.config.pcnn_threads,
            |(_, worlds)| vertical_timesets_governed(worlds, &cfg, Some(&gauge)),
        );
        let mining_time = mine_start.elapsed();
        let mut candidate_sets_evaluated = 0usize;
        let mut max_level = 0usize;
        let mut frontier_peak = 0usize;
        let mut mining_degraded = false;
        let mut results: Vec<PcnnObjectResult> = Vec::new();
        for ((object, _), lattice) in sampling.candidate_worlds.iter().zip(lattices) {
            let lattice = lattice
                .map_err(|e| enrich_partial(e, &candidates, &influencers, filter_time))?;
            candidate_sets_evaluated += lattice.candidate_sets_evaluated;
            max_level = max_level.max(lattice.max_level);
            frontier_peak = frontier_peak.max(lattice.frontier_peak);
            mining_degraded |= lattice.degraded;
            if lattice.sets.is_empty() {
                continue;
            }
            let sets = lattice
                .sets
                .into_iter()
                .map(|(indices, p)| {
                    (indices.into_iter().map(|i| times[i]).collect::<Vec<_>>(), p)
                })
                .collect();
            results.push(PcnnObjectResult {
                object: *object,
                sets,
                candidate_sets_evaluated: lattice.candidate_sets_evaluated,
            });
        }
        let mut stats = self.stats_from(&candidates, &influencers, &sampling, &gauge, filter_time);
        stats.max_level = max_level;
        stats.frontier_peak = frontier_peak;
        stats.mining_time = mining_time;
        stats.degraded |= mining_degraded;
        Ok(PcnnOutcome { results, stats, candidate_sets_evaluated })
    }
}

/// Fills the engine-level fields of the partial stats a budget error carries:
/// the gauge only knows its checkpoint count, while the filter outcome and
/// timing live up here.
fn enrich_partial(
    mut error: QueryError,
    candidates: &[ObjectId],
    influencers: &[ObjectId],
    filter_time: Duration,
) -> QueryError {
    if let Some(stats) = error.partial_stats_mut() {
        stats.candidates = candidates.len();
        stats.influencers = influencers.len();
        stats.filter_time = filter_time;
    }
    error
}

/// Output of the internal sampling pass.
struct SamplingOutput {
    /// Per candidate (ascending object order), the transposed world-set: one
    /// bitset over worlds per query timestamp.
    candidate_worlds: Vec<(ObjectId, WorldSet)>,
    /// Per influence object (sampler order), the number of worlds with at
    /// least one NN timestamp (the ∃ event of Definition 1).
    exists_counts: Vec<(ObjectId, usize)>,
    /// Worlds actually sampled (the probability denominator).
    worlds: usize,
    /// Worlds the configuration asked for.
    worlds_requested: usize,
    /// Whether a `max_worlds` cap or a deadline stopped sampling early.
    degraded: bool,
    adaptation_time: Duration,
    cache_hits: usize,
    cold_adaptations: usize,
    sampling_time: Duration,
}

fn sort_results(results: &mut [ObjectProbability]) {
    results.sort_by(|a, b| {
        b.probability
            .total_cmp(&a.probability)
            .then_with(|| a.object.cmp(&b.object))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use ust_markov::{CsrMatrix, MarkovModel};
    use ust_spatial::{Point, StateSpace};
    use ust_trajectory::UncertainObject;

    /// The example of Figure 1: states s1..s4 at increasing distance from the
    /// query q, objects o1 (three possible trajectories) and o2 (two possible
    /// trajectories) over T = {1, 2, 3}.
    fn figure1_db() -> TrajectoryDatabase {
        // Distances from q: s1 < s2 < s3 < s4. Place them on a line with q at x=0.
        let space = StdArc::new(StateSpace::from_points(vec![
            Point::new(1.0, 0.0), // s1
            Point::new(2.0, 0.0), // s2
            Point::new(3.0, 0.0), // s3
            Point::new(4.0, 0.0), // s4
        ]));
        // o1: starts at s2 (t=1); s2 -> {s1, s3} each 0.5; s1 absorbing; s3 -> {s1, s3}.
        let o1_model = MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(3, 1.0)],
        ]));
        // o2: starts at s3 (t=1); s3 -> {s2, s4} each 0.5; s2 -> s2; s4 -> s4.
        let o2_model = MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],
            vec![(1, 1.0)],
            vec![(1, 0.5), (3, 0.5)],
            vec![(3, 1.0)],
        ]));
        let objects = vec![
            UncertainObject::from_pairs(1, vec![(1, 1)]).unwrap(),
            UncertainObject::from_pairs(2, vec![(1, 2)]).unwrap(),
        ];
        let mut db = TrajectoryDatabase::with_objects(
            space,
            StdArc::new(o1_model),
            objects,
        );
        db.set_object_model(2, StdArc::new(o2_model));
        db
    }

    fn query() -> Query {
        Query::at_point(Point::new(0.0, 0.0), vec![1, 2, 3]).unwrap()
    }

    /// With a single observation at t=1 the adapted model equals the a-priori
    /// forward propagation only over [1,1]; to make the Figure 1 example work
    /// over T={1,2,3} the observations must cover the interval. We therefore
    /// additionally pin the final states in a way that preserves the paper's
    /// possible worlds: o1 is left unpinned (single observation covers only
    /// t=1), so for the full Figure 1 semantics we instead use the exact
    /// engine in `exact.rs` tests. Here we verify engine-level behaviour on a
    /// database where coverage spans the query interval.
    fn covered_db() -> TrajectoryDatabase {
        let space = StdArc::new(StateSpace::from_points(vec![
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(4.0, 0.0),
        ]));
        let model = MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(0, 0.5), (2, 0.5)],
            vec![(3, 1.0)],
        ]));
        let objects = vec![
            // o1 starts at s2, ends (pinned) at s1.
            UncertainObject::from_pairs(1, vec![(1, 1), (3, 0)]).unwrap(),
            // o2 sits at s4 the whole time: never the NN.
            UncertainObject::from_pairs(2, vec![(1, 3), (3, 3)]).unwrap(),
        ];
        TrajectoryDatabase::with_objects(space, StdArc::new(model), objects)
    }

    #[test]
    fn forall_and_exists_on_a_dominant_object() {
        let db = covered_db();
        let engine = QueryEngine::new(&db, EngineConfig { num_samples: 2_000, ..Default::default() });
        let q = query();
        let forall = engine.pforall_nn(&q, 0.0).unwrap();
        assert_eq!(forall.results.len(), 1);
        assert_eq!(forall.results[0].object, 1);
        assert!((forall.results[0].probability - 1.0).abs() < 1e-9);
        let exists = engine.pexists_nn(&q, 0.0).unwrap();
        assert!(exists.contains(1));
        assert!(!exists.contains(2), "object 2 is never the nearest neighbor");
        assert_eq!(forall.stats.worlds, 2_000);
        assert!(forall.stats.candidates >= 1);
        assert!(forall.stats.influencers >= forall.stats.candidates);
    }

    #[test]
    fn figure1_database_builds_and_filters() {
        let db = figure1_db();
        let engine = QueryEngine::new(&db, EngineConfig::with_samples(100));
        // Query restricted to t=1 (both objects observed there).
        let q = Query::at_point(Point::new(0.0, 0.0), vec![1]).unwrap();
        let outcome = engine.pforall_nn(&q, 0.0).unwrap();
        // At t=1, o1 is at s2 (dist 2) and o2 at s3 (dist 3): o1 is certainly the NN.
        assert_eq!(outcome.results.len(), 1);
        assert_eq!(outcome.results[0].object, 1);
        assert!((outcome.results[0].probability - 1.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_filters_results() {
        let db = covered_db();
        let engine = QueryEngine::new(&db, EngineConfig::with_samples(500));
        let q = query();
        let exists = engine.pexists_nn(&q, 0.9).unwrap();
        assert!(exists.contains(1));
        let exists_strict = engine.pexists_nn(&q, 1.1);
        assert!(exists_strict.is_err(), "invalid threshold must be rejected");
    }

    #[test]
    fn knn_with_k2_admits_both_objects() {
        let db = covered_db();
        let engine = QueryEngine::new(&db, EngineConfig::with_samples(500));
        let q = query();
        let forall_k2 = engine.pforall_knn(&q, 2, 0.5).unwrap();
        assert!(forall_k2.contains(1));
        assert!(forall_k2.contains(2), "with k=2 both objects are always in the kNN set");
        let forall_k1 = engine.pforall_knn(&q, 1, 0.5).unwrap();
        assert!(!forall_k1.contains(2));
    }

    #[test]
    fn pcnn_returns_full_interval_for_dominant_object() {
        let db = covered_db();
        let engine = QueryEngine::new(&db, EngineConfig::with_samples(500));
        let q = query();
        let outcome = engine.pcnn(&q, 0.5).unwrap();
        let sets = outcome.sets_of(1).expect("object 1 qualifies");
        assert!(sets.iter().any(|(ts, p)| ts == &vec![1, 2, 3] && *p > 0.99));
        assert!(outcome.sets_of(2).is_none());
        assert!(outcome.candidate_sets_evaluated >= 3);
        assert!(outcome.total_result_sets() >= 7, "all subsets of {{1,2,3}} qualify");
    }

    #[test]
    fn maximal_pcnn_reports_only_the_largest_sets() {
        let db = covered_db();
        let engine = QueryEngine::new(
            &db,
            EngineConfig { num_samples: 500, maximal_pcnn_sets: true, ..Default::default() },
        );
        let q = query();
        let outcome = engine.pcnn(&q, 0.5).unwrap();
        let sets = outcome.sets_of(1).unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].0, vec![1, 2, 3]);
    }

    #[test]
    fn engine_without_index_gives_same_probabilities() {
        let db = covered_db();
        let q = query();
        let with_index = QueryEngine::new(&db, EngineConfig::with_samples(1_000));
        let without_index = QueryEngine::new(
            &db,
            EngineConfig { num_samples: 1_000, use_index: false, ..Default::default() },
        );
        let a = with_index.pforall_nn(&q, 0.0).unwrap();
        let b = without_index.pforall_nn(&q, 0.0).unwrap();
        assert_eq!(a.results.len(), b.results.len());
        for r in &a.results {
            assert!((r.probability - b.probability_of(r.object)).abs() < 0.05);
        }
        assert!(without_index.index().is_none());
        assert!(with_index.index().is_some());
    }

    #[test]
    fn model_cache_is_reused_across_queries() {
        let db = covered_db();
        let engine = QueryEngine::new(&db, EngineConfig::with_samples(100));
        assert_eq!(engine.cached_models(), 0);
        let q = query();
        engine.pforall_nn(&q, 0.0).unwrap();
        let cached = engine.cached_models();
        assert!(cached >= 1);
        engine.pexists_nn(&q, 0.0).unwrap();
        assert_eq!(engine.cached_models(), cached, "second query reuses the cache");
        engine.clear_model_cache();
        assert_eq!(engine.cached_models(), 0);
        let outcome = engine.prepare_all().unwrap();
        assert!(outcome.cold_time >= Duration::ZERO);
        assert_eq!(outcome.cold_adaptations, db.len());
        assert_eq!(outcome.cache_hits, 0);
        assert_eq!(engine.cached_models(), db.len());
        let warm = engine.prepare_all().unwrap();
        assert_eq!(warm.cold_adaptations, 0);
        assert_eq!(warm.cache_hits, db.len());
        assert_eq!(warm.cold_time, Duration::ZERO, "warm lookups are not TS work");
    }

    #[test]
    fn one_index_build_serves_many_engines() {
        let db = covered_db();
        let first = QueryEngine::new(&db, EngineConfig::with_samples(300));
        let shared = first.shared_index().expect("filter step enabled by default");
        let second = QueryEngine::with_index(&db, shared, EngineConfig::with_samples(300));
        assert!(
            std::ptr::eq(first.index().unwrap(), second.index().unwrap()),
            "the second engine must serve queries from the same build, not a clone"
        );
        let q = query();
        let a = first.pforall_nn(&q, 0.0).unwrap();
        let b = second.pforall_nn(&q, 0.0).unwrap();
        assert_eq!(a.results, b.results);
        let stats = first.index_build_stats().expect("index stats available");
        assert!(stats.diamonds >= 1);
        assert!(stats.build_threads >= 1);
        let no_index = QueryEngine::new(
            &db,
            EngineConfig { use_index: false, num_samples: 10, ..Default::default() },
        );
        assert!(no_index.shared_index().is_none());
        assert!(no_index.index_build_stats().is_none());
    }

    #[test]
    fn index_build_thread_count_does_not_change_results() {
        let db = covered_db();
        let q = query();
        let serial = QueryEngine::new(
            &db,
            EngineConfig { num_samples: 400, index_build_threads: 1, ..Default::default() },
        );
        let sharded = QueryEngine::new(
            &db,
            EngineConfig { num_samples: 400, index_build_threads: 4, ..Default::default() },
        );
        assert_eq!(
            serial.pforall_nn(&q, 0.0).unwrap().results,
            sharded.pforall_nn(&q, 0.0).unwrap().results,
            "build thread count must not change query results"
        );
    }

    #[test]
    fn unknown_object_id_is_reported_as_such() {
        let db = covered_db();
        let engine = QueryEngine::new(&db, EngineConfig::with_samples(100));
        let err = engine.adapted_model(99).unwrap_err();
        assert_eq!(err, QueryError::UnknownObject { object: 99 });
        assert!(err.to_string().contains("no object with id 99"));
    }

    #[test]
    fn warm_queries_report_hits_and_zero_adaptation_time() {
        let db = covered_db();
        let engine = QueryEngine::new(&db, EngineConfig::with_samples(200));
        let q = query();
        let first = engine.pforall_nn(&q, 0.0).unwrap();
        assert_eq!(first.stats.cold_adaptations, first.stats.influencers);
        assert_eq!(first.stats.cache_hits, 0);
        let second = engine.pforall_nn(&q, 0.0).unwrap();
        assert_eq!(second.stats.cold_adaptations, 0);
        assert_eq!(second.stats.cache_hits, second.stats.influencers);
        assert_eq!(
            second.stats.adaptation_time,
            Duration::ZERO,
            "warm cache lookups must not count as TS time"
        );
    }

    #[test]
    fn serial_and_parallel_adaptation_agree() {
        let db = covered_db();
        let q = query();
        let serial = QueryEngine::new(
            &db,
            EngineConfig { num_samples: 500, adaptation_threads: 1, ..Default::default() },
        );
        let parallel = QueryEngine::new(
            &db,
            EngineConfig { num_samples: 500, adaptation_threads: 4, ..Default::default() },
        );
        let a = serial.pforall_nn(&q, 0.0).unwrap();
        let b = parallel.pforall_nn(&q, 0.0).unwrap();
        assert_eq!(a.results, b.results, "thread count must not change query results");
    }

    #[test]
    fn queries_outside_any_objects_lifetime_return_nothing() {
        let db = covered_db();
        let engine = QueryEngine::new(&db, EngineConfig::with_samples(100));
        let q = Query::at_point(Point::new(0.0, 0.0), vec![50, 51]).unwrap();
        let outcome = engine.pforall_nn(&q, 0.0).unwrap();
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.stats.candidates, 0);
        assert_eq!(outcome.stats.influencers, 0);
    }
}
