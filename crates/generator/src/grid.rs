//! A uniform spatial hash grid.
//!
//! The synthetic network generator must connect every state to all states
//! within the radius `r = sqrt(b / (N π))`. A naive all-pairs scan is
//! `O(N²)`; bucketing the states into cells of side length `r` makes the
//! neighbor search expected `O(1)` per state for uniformly distributed data,
//! which keeps even the paper-scale `N = 500 000` configuration tractable.

use rustc_hash::FxHashMap;
use ust_spatial::{Point, StateId};

/// A hash grid over 2-d points with a fixed cell size.
#[derive(Debug, Clone)]
pub struct GridIndex {
    cell: f64,
    buckets: FxHashMap<(i64, i64), Vec<StateId>>,
}

impl GridIndex {
    /// Builds a grid with the given cell size over the given points (indexed
    /// by their position in the slice).
    ///
    /// # Panics
    /// Panics if `cell_size` is not strictly positive.
    pub fn build(points: &[Point], cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let mut buckets: FxHashMap<(i64, i64), Vec<StateId>> = FxHashMap::default();
        for (i, p) in points.iter().enumerate() {
            buckets.entry(Self::key(p, cell_size)).or_default().push(i as StateId);
        }
        GridIndex { cell: cell_size, buckets }
    }

    fn key(p: &Point, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// Number of non-empty cells.
    pub fn num_cells(&self) -> usize {
        self.buckets.len()
    }

    /// All states within Euclidean distance `radius` of `center` (excluding
    /// `exclude`, typically the state itself). `points` must be the same slice
    /// the grid was built from.
    pub fn within_radius(
        &self,
        points: &[Point],
        center: &Point,
        radius: f64,
        exclude: Option<StateId>,
    ) -> Vec<StateId> {
        let r2 = radius * radius;
        let reach = (radius / self.cell).ceil() as i64;
        let (cx, cy) = Self::key(center, self.cell);
        let mut out = Vec::new();
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                if let Some(bucket) = self.buckets.get(&(cx + dx, cy + dy)) {
                    for &s in bucket {
                        if Some(s) == exclude {
                            continue;
                        }
                        if points[s as usize].dist2(center) <= r2 {
                            out.push(s);
                        }
                    }
                }
            }
        }
        out
    }

    /// The state nearest to `center`, searching outward ring by ring.
    pub fn nearest(&self, points: &[Point], center: &Point) -> Option<StateId> {
        if points.is_empty() {
            return None;
        }
        let (cx, cy) = Self::key(center, self.cell);
        let mut best: Option<(f64, StateId)> = None;
        let mut ring = 0i64;
        loop {
            let mut found_any = false;
            for dx in -ring..=ring {
                for dy in -ring..=ring {
                    if dx.abs() != ring && dy.abs() != ring {
                        continue; // only the boundary of the ring
                    }
                    if let Some(bucket) = self.buckets.get(&(cx + dx, cy + dy)) {
                        found_any = true;
                        for &s in bucket {
                            let d = points[s as usize].dist2(center);
                            if best.map(|(bd, _)| d < bd).unwrap_or(true) {
                                best = Some((d, s));
                            }
                        }
                    }
                }
            }
            // Stop once we have a candidate and have searched one extra ring
            // (a nearer point cannot hide further out than cell diagonal).
            if let Some((d, _)) = best {
                let safe_radius = (ring as f64 - 1.0).max(0.0) * self.cell;
                if d.sqrt() <= safe_radius || ring as usize > self.buckets.len() + 2 {
                    break;
                }
            }
            if !found_any && ring as usize > 4 * (self.buckets.len() + 2) {
                break;
            }
            ring += 1;
        }
        best.map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.0),
            Point::new(0.0, 0.1),
            Point::new(0.5, 0.5),
            Point::new(1.0, 1.0),
        ]
    }

    #[test]
    fn radius_queries_match_linear_scan() {
        let pts = cluster();
        let grid = GridIndex::build(&pts, 0.2);
        for (i, p) in pts.iter().enumerate() {
            let mut got = grid.within_radius(&pts, p, 0.25, Some(i as StateId));
            got.sort_unstable();
            let mut expected: Vec<StateId> = pts
                .iter()
                .enumerate()
                .filter(|&(j, q)| j != i && q.dist(p) <= 0.25)
                .map(|(j, _)| j as StateId)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "neighbors of point {i}");
        }
    }

    #[test]
    fn radius_query_without_exclusion_includes_self() {
        let pts = cluster();
        let grid = GridIndex::build(&pts, 0.2);
        let got = grid.within_radius(&pts, &pts[0], 0.01, None);
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn nearest_finds_the_closest_point() {
        let pts = cluster();
        let grid = GridIndex::build(&pts, 0.2);
        assert_eq!(grid.nearest(&pts, &Point::new(0.52, 0.48)), Some(3));
        assert_eq!(grid.nearest(&pts, &Point::new(5.0, 5.0)), Some(4));
        assert_eq!(grid.nearest(&[], &Point::new(0.0, 0.0)), None);
    }

    #[test]
    fn cell_bucketing() {
        let pts = cluster();
        let grid = GridIndex::build(&pts, 1.0);
        assert!(grid.num_cells() >= 2);
    }
}
