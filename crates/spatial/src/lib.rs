//! # ust-spatial
//!
//! Spatial substrate for probabilistic nearest-neighbor queries on uncertain
//! moving-object trajectories (Niedermayer et al., PVLDB 7(3), 2013).
//!
//! The paper assumes a *discrete* state space `S = {s_1, ..., s_|S|} ⊂ R^d`
//! (Section 3): road crossings, RFID reader positions, or grid cells. This
//! crate provides
//!
//! * [`Point`] — a position in the plane together with Euclidean distance
//!   helpers (the paper's distance function `d`),
//! * [`Rect`] — axis-aligned minimum bounding rectangles of arbitrary constant
//!   dimension, with the `dmin`/`dmax` distance bounds used by the UST-tree
//!   pruning rules of Section 6,
//! * [`StateSpace`] — the finite alphabet of possible locations, mapping
//!   [`StateId`]s to points,
//! * [`rtree::RTree`] — a from-scratch R*-tree ([Beckmann et al., SIGMOD 1990],
//!   reference \[31\] of the paper) used as the secondary index underneath the
//!   UST-tree.
//!
//! Everything in this crate is deterministic and purely geometric; all
//! probabilistic machinery lives in `ust-markov` and above.

pub mod point;
pub mod rect;
pub mod rtree;
pub mod state_space;

pub use point::Point;
pub use rect::{Rect, Rect2, Rect3};
pub use rtree::RTree;
pub use state_space::{StateId, StateSpace};
