//! Figure 13: PCNN query efficiency while varying the number of objects.
//!
//! Paper sweep: |D| ∈ {1k, 10k, 20k} at τ = 0.5. Reported series: the
//! model-adaptation time (TS), the sampling + vertical lattice time (SA,
//! called "NNA" in the paper's left plot), the number of qualifying timestamp
//! sets (right plot) and the lattice observability counters. The paper
//! observes that TS grows with |D| while the number of qualifying timestamp
//! sets shrinks (more pruners -> smaller probabilities -> fewer candidate
//! intervals).
//!
//! `--threads N` fans the TS phase and the per-candidate lattice runs across
//! `N` workers (0 = available parallelism; default: serial).

use std::time::Instant;
use ust_bench::continuous::measure_pcnn;
use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_bench::{ExperimentReport, Row, RunScale, RunSettings};
use ust_core::prepare::resolve_adaptation_threads;

fn main() {
    let settings = RunSettings::from_env();
    settings.reject_ingest_flags("fig13_pcnn_vary_objects");
    settings.reject_store_flag("fig13_pcnn_vary_objects");
    settings.reject_wal_flags("fig13_pcnn_vary_objects");
    settings.reject_deadline_flag("fig13_pcnn_vary_objects");
    let params = ScaleParams::for_scale(settings.scale);
    let threads = resolve_adaptation_threads(settings.adaptation_threads.unwrap_or(1));
    let sweep: Vec<usize> = match settings.scale {
        RunScale::Quick => vec![50, 100, 200],
        RunScale::Default => vec![250, 1_000, 4_000],
        RunScale::Paper => vec![1_000, 10_000, 20_000],
    };
    let tau = 0.5;
    let mut report = ExperimentReport::new(
        "figure13_pcnn_vary_objects",
        "PCNN efficiency while varying |D| at tau = 0.5 \
         (paper: Figure 13; TS/SA in seconds, timestamp sets = qualifying (object, set) pairs, \
         MaxLevel/FrontierPeak = lattice depth/width observability)",
    )
    .with_meta("threads", threads as f64);
    let wall_start = Instant::now();
    for d in sweep {
        eprintln!("[fig13] |D| = {d} (threads: {threads})");
        let dataset = build_synthetic(&params, params.num_states, params.branching, d, settings.seed);
        let queries = build_queries(&dataset, &params, settings.seed);
        let m = measure_pcnn(&dataset, &queries, params.num_samples, tau, settings.seed, threads);
        report.push(
            Row::new(format!("|D|={d}"))
                .with("TS", m.ts_seconds)
                .with("SA", m.sa_seconds)
                .with("#TimestampSets", m.timestamp_sets)
                .with("#CandidateSets", m.candidate_sets)
                .with("MaxLevel", m.max_level)
                .with("FrontierPeak", m.frontier_peak)
                .with("wall", m.wall_seconds),
        );
    }
    report.set_meta("wall_clock_seconds", wall_start.elapsed().as_secs_f64());
    report.print();
    report.maybe_write_json(&settings.json_path).expect("failed to write JSON report");
}
