//! The snapshot-based competitor approach (\[19\], adapted to NN queries).
//!
//! Section 7.1 ("Sampling Precision and Effectiveness") compares the paper's
//! trajectory-aware sampling against the approach of Xu et al. \[19\], which
//! evaluates a *snapshot* query `P∀NNQ(q, D, {t}, τ)` at every timestamp and
//! combines the per-timestamp probabilities under the (incorrect) assumption
//! of temporal independence:
//!
//! ```text
//! P∀NN(o, q, D, T) ≈ Π_{t ∈ T} P∀NN(o, q, D, {t})
//! P∃NN(o, q, D, T) ≈ 1 - Π_{t ∈ T} (1 - P∃NN(o, q, D, {t}))
//! ```
//!
//! Ignoring the temporal correlation of consecutive positions biases the ∀
//! estimate low and the ∃ estimate high (Figure 11). The per-timestamp
//! probabilities themselves are computed *exactly* here (objects are mutually
//! independent, so the snapshot probability factorises over objects), which
//! isolates the bias caused by the independence assumption rather than adding
//! sampling noise.
//!
//! Naming note: this "snapshot" is the *query semantics* baseline of the
//! paper's effectiveness comparison and has nothing to do with persistence.
//! The durable on-disk image of an engine — database, UST-tree, adapted
//! models — is the *store* ([`crate::store::EngineStore`], `ust_persist`).

use crate::query::Query;
use crate::results::ObjectProbability;
use crate::ObjectId;
use rustc_hash::FxHashMap;
use std::sync::Arc;
use ust_markov::{AdaptedModel, Timestamp};
use ust_spatial::{Point, StateSpace};

/// Per-object snapshot probabilities for one timestamp.
fn snapshot_nn_probabilities(
    models: &[(ObjectId, Arc<AdaptedModel>)],
    space: &StateSpace,
    q: &Point,
    t: Timestamp,
) -> FxHashMap<ObjectId, f64> {
    // Distance distribution of every object alive at t: sorted distances with
    // suffix sums of the probability mass at-or-beyond each distance.
    struct DistanceDistribution {
        dists: Vec<f64>,
        suffix: Vec<f64>,
    }
    impl DistanceDistribution {
        /// P(distance >= d) for this object.
        fn prob_at_least(&self, d: f64) -> f64 {
            // First index with dists[i] >= d.
            let idx = self.dists.partition_point(|&x| x < d);
            if idx >= self.suffix.len() {
                0.0
            } else {
                self.suffix[idx]
            }
        }
    }

    // One entry per object alive at `t`: its distance distribution plus the
    // sorted `(distance, probability)` pairs it was built from.
    type AliveEntry = (ObjectId, DistanceDistribution, Vec<(f64, f64)>);
    let mut alive: Vec<AliveEntry> = Vec::new();
    for (id, model) in models {
        let Some(post) = model.posterior_at(t) else { continue };
        let mut pairs: Vec<(f64, f64)> = post
            .iter()
            .map(|(s, p)| (space.position(s).dist(q), p))
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let dists: Vec<f64> = pairs.iter().map(|&(d, _)| d).collect();
        let mut suffix = vec![0.0; pairs.len() + 1];
        for i in (0..pairs.len()).rev() {
            suffix[i] = suffix[i + 1] + pairs[i].1;
        }
        alive.push((*id, DistanceDistribution { dists, suffix }, pairs));
    }

    let mut out = FxHashMap::default();
    for (i, (id, _, pairs)) in alive.iter().enumerate() {
        let mut p_nn = 0.0;
        for &(d, p) in pairs {
            if p <= 0.0 {
                continue;
            }
            let mut others = 1.0;
            for (j, (_, other_dist, _)) in alive.iter().enumerate() {
                if i == j {
                    continue;
                }
                others *= other_dist.prob_at_least(d);
                if others == 0.0 {
                    break;
                }
            }
            p_nn += p * others;
        }
        out.insert(*id, p_nn);
    }
    out
}

/// Snapshot-based estimate of `P∀NN(o, q, D, T)` for every object.
pub fn snapshot_forall_nn(
    models: &[(ObjectId, Arc<AdaptedModel>)],
    space: &StateSpace,
    query: &Query,
) -> Vec<ObjectProbability> {
    combine(models, space, query, true)
}

/// Snapshot-based estimate of `P∃NN(o, q, D, T)` for every object.
pub fn snapshot_exists_nn(
    models: &[(ObjectId, Arc<AdaptedModel>)],
    space: &StateSpace,
    query: &Query,
) -> Vec<ObjectProbability> {
    combine(models, space, query, false)
}

fn combine(
    models: &[(ObjectId, Arc<AdaptedModel>)],
    space: &StateSpace,
    query: &Query,
    forall: bool,
) -> Vec<ObjectProbability> {
    // Both aggregations are products starting at one: Π_t p_t for the ∀ case,
    // Π_t (1 - p_t) for the ∃ case (complemented at the end).
    let mut acc: FxHashMap<ObjectId, f64> = models.iter().map(|(id, _)| (*id, 1.0)).collect();
    for &t in query.times() {
        let q = query.position_at(t).expect("query validated by the caller");
        let per_t = snapshot_nn_probabilities(models, space, &q, t);
        // lint: allow(D001) per-entry in-place update; no cross-entry order dependence
        for (id, value) in acc.iter_mut() {
            let p_t = per_t.get(id).copied().unwrap_or(0.0);
            if forall {
                *value *= p_t;
            } else {
                *value *= 1.0 - p_t;
            }
        }
    }
    // lint: allow(D001) drained in hash order but sorted below before anything is emitted
    let mut out: Vec<ObjectProbability> = acc
        .into_iter()
        .map(|(object, v)| ObjectProbability {
            object,
            probability: if forall { v } else { 1.0 - v },
        })
        .collect();
    out.sort_by(|a, b| b.probability.total_cmp(&a.probability).then(a.object.cmp(&b.object)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ust_markov::{CsrMatrix, MarkovModel};

    fn line_space() -> StateSpace {
        StateSpace::from_points((0..6).map(|i| Point::new(i as f64, 0.0)).collect())
    }

    /// Two objects pinned to fixed states: snapshot probabilities must be 0/1.
    #[test]
    fn deterministic_objects_give_deterministic_snapshots() {
        let space = line_space();
        let model = MarkovModel::homogeneous(CsrMatrix::identity(6));
        let near = Arc::new(AdaptedModel::build(&model, &[(0, 1), (2, 1)]).unwrap());
        let far = Arc::new(AdaptedModel::build(&model, &[(0, 4), (2, 4)]).unwrap());
        let models = vec![(1, near), (2, far)];
        let q = Query::at_point(Point::new(0.0, 0.0), vec![0, 1, 2]).unwrap();
        let forall = snapshot_forall_nn(&models, &space, &q);
        let exists = snapshot_exists_nn(&models, &space, &q);
        let get = |v: &Vec<ObjectProbability>, id| {
            v.iter().find(|r| r.object == id).map(|r| r.probability).unwrap_or(0.0)
        };
        assert!((get(&forall, 1) - 1.0).abs() < 1e-12);
        assert!(get(&forall, 2) < 1e-12);
        assert!((get(&exists, 1) - 1.0).abs() < 1e-12);
        assert!(get(&exists, 2) < 1e-12);
    }

    /// One uncertain object against one fixed object: the per-timestamp
    /// probability is straightforward to compute by hand.
    #[test]
    fn single_timestamp_probability_matches_hand_computation() {
        let space = line_space();
        // Object 1 is at state 1 or state 3 with probability 0.5 each at t=1
        // (via a chain from state 2 that moves left or right).
        let model = MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],
            vec![(1, 1.0)],
            vec![(1, 0.5), (3, 0.5)],
            vec![(3, 1.0)],
            vec![(4, 1.0)],
            vec![(5, 1.0)],
        ]));
        let uncertain = Arc::new(AdaptedModel::build(&model, &[(0, 2)]).unwrap());
        // For a one-step horizon we need the posterior at t=0 only; instead
        // query at t=0 where the object is certainly at state 2 (distance 2),
        // and the fixed competitor sits at distance 2 as well (tie).
        let fixed = Arc::new(AdaptedModel::build(&model, &[(0, 4)]).unwrap());
        let models = vec![(1, uncertain), (2, fixed)];
        let q = Query::at_point(Point::new(0.0, 0.0), vec![0]).unwrap();
        let forall = snapshot_forall_nn(&models, &space, &q);
        let p1 = forall.iter().find(|r| r.object == 1).unwrap().probability;
        let p2 = forall.iter().find(|r| r.object == 2).unwrap().probability;
        // Object 1 at distance 2, object 2 at distance 4: object 1 is the NN.
        assert!((p1 - 1.0).abs() < 1e-12);
        assert!(p2.abs() < 1e-12);
    }

    /// The key property the paper demonstrates in Figure 11: for positively
    /// correlated positions the snapshot ∀-estimate underestimates the true
    /// probability and the ∃-estimate overestimates it.
    #[test]
    fn snapshot_forall_underestimates_and_exists_overestimates() {
        let space = line_space();
        // Object 1 starts at state 2 (x = 2), drifts to the near side (state 1)
        // or the far side (state 3) and wanders there before returning to
        // state 2 at its final observation. Its positions at the intermediate
        // query timestamps are therefore strongly positively correlated: once
        // on the near side it tends to stay near the query.
        let o1_model = MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 1.0)],
            vec![(1, 0.5), (2, 0.5)],
            vec![(1, 0.5), (3, 0.5)],
            vec![(3, 0.5), (2, 0.5)],
            vec![(4, 1.0)],
            vec![(5, 1.0)],
        ]));
        // Object 2 sits at state 2 (distance 2 from the query) the whole time.
        let o2_model = MarkovModel::homogeneous(CsrMatrix::identity(6));
        let o1 = Arc::new(AdaptedModel::build(&o1_model, &[(0, 2), (4, 2)]).unwrap());
        let o2 = Arc::new(AdaptedModel::build(&o2_model, &[(0, 2), (4, 2)]).unwrap());
        let models = vec![(1, o1), (2, o2)];
        // Query over the three uncertain intermediate timestamps.
        let q = Query::at_point(Point::new(0.0, 0.0), vec![1, 2, 3]).unwrap();

        // Exact probabilities via possible-world enumeration.
        let exact =
            crate::exact::exact_pnn(&models, &space, &q, 10_000).expect("small instance");
        let snap_forall = snapshot_forall_nn(&models, &space, &q);
        let snap_exists = snapshot_exists_nn(&models, &space, &q);
        let sf = snap_forall.iter().find(|r| r.object == 1).unwrap().probability;
        let se = snap_exists.iter().find(|r| r.object == 1).unwrap().probability;
        let ef = exact.forall_of(1);
        let ee = exact.exists_of(1);
        assert!(
            sf <= ef + 1e-9,
            "snapshot ∀ estimate {sf} should not exceed the exact probability {ef}"
        );
        assert!(
            se >= ee - 1e-9,
            "snapshot ∃ estimate {se} should not fall below the exact probability {ee}"
        );
        // And the bias is strict on this instance.
        assert!(sf < ef);
    }
}
