//! Bounded deterministic fuzz smoke over the WAL reader, plus the pinned
//! hostile-WAL corpus.
//!
//! A fixed-seed [`Mutator`] derives thousands of corrupted inputs from a
//! valid three-frame log; [`decode_wal`] must classify every one of them as
//! either a clean decode, a torn tail (silently truncated at the last valid
//! frame — and that truncation must be a *fixpoint*: decoding the valid
//! prefix again reproduces the same batches with zero torn bytes), or a
//! typed [`StoreError`] — never a panic. A second, structure-aware pass
//! re-frames mutated payloads with a fixed-up checksum, driving corruption
//! past the integrity gate into the payload validation that distinguishes
//! "torn write" from "hostile bytes".
//!
//! The two fixtures under `tests/data/stores/` pin the two sides of the
//! torn-tail rule the way `hostile_corpus.rs` pins the store decoder. To
//! regenerate after a deliberate format change:
//!
//! ```text
//! cargo test -p ust-persist --test wal_fuzz -- --ignored
//! ```

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use ust_persist::format::{fnv1a64, ByteReader, ByteWriter};
use ust_persist::wal::{decode_wal, encode_frame, encode_wal_header, WalBatch, WAL_MAGIC, WAL_VERSION};
use ust_persist::{Mutator, StoreError};
use ust_trajectory::Observation;

/// Mutants per pass; CI runs both passes, so the smoke covers 2 × N inputs.
const MUTANTS: usize = 10_000;

/// The deterministic three-frame log every mutant derives from.
fn base_batches() -> Vec<WalBatch> {
    let obs = |pairs: &[(u32, u32)]| -> Vec<Observation> {
        pairs.iter().map(|&(t, s)| Observation::new(t, s)).collect()
    };
    vec![
        vec![(7, obs(&[(0, 3), (4, 1), (9, 2)])), (11, obs(&[(2, 0)]))],
        vec![(7, obs(&[(12, 5)]))],
        vec![(23, obs(&[(1, 4), (6, 6)])), (42, obs(&[(3, 7), (8, 0), (10, 1)]))],
    ]
}

fn base_wal() -> Vec<u8> {
    let mut bytes = encode_wal_header();
    for b in base_batches() {
        bytes.extend_from_slice(&encode_frame(&b));
    }
    bytes
}

/// A short, stable label for an error variant, for diversity accounting.
fn variant(e: &StoreError) -> &'static str {
    match e {
        StoreError::Io { .. } => "Io",
        StoreError::BadMagic => "BadMagic",
        StoreError::UnsupportedVersion { .. } => "UnsupportedVersion",
        StoreError::Truncated { .. } => "Truncated",
        StoreError::ChecksumMismatch { .. } => "ChecksumMismatch",
        StoreError::SectionOverflow { .. } => "SectionOverflow",
        StoreError::CountOverflow { .. } => "CountOverflow",
        StoreError::Malformed { .. } => "Malformed",
        StoreError::DuplicateSection { .. } => "DuplicateSection",
        StoreError::MissingSection { .. } => "MissingSection",
        StoreError::UnknownSection { .. } => "UnknownSection",
        StoreError::NotFileBacked => "NotFileBacked",
    }
}

/// Decodes one mutant inside a panic guard. On a successful decode, also
/// proves torn-tail determinism: a second decode agrees exactly, and the
/// valid prefix is a fixpoint (same batches, zero torn bytes) — the property
/// `repair_wal` relies on. Returns `false` on panic.
fn survives(bytes: &[u8], seen: &mut BTreeSet<&'static str>) -> bool {
    let result = catch_unwind(AssertUnwindSafe(|| match decode_wal(bytes) {
        Ok(contents) => {
            assert_eq!(decode_wal(bytes).unwrap(), contents, "decode is deterministic");
            let prefix = &bytes[..contents.valid_len as usize];
            let repaired = decode_wal(prefix).expect("the valid prefix decodes");
            assert_eq!(repaired.batches, contents.batches, "truncation is a fixpoint");
            assert_eq!(repaired.torn_bytes(), 0, "nothing torn remains after repair");
            None
        }
        Err(err) => Some(err),
    }));
    match result {
        Ok(Some(err)) => {
            seen.insert(variant(&err));
            true
        }
        Ok(None) => true,
        Err(_) => false,
    }
}

/// Splits the base WAL into its frame payloads.
fn split_payloads(bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut r = ByteReader::new(bytes, "fixture");
    assert_eq!(r.bytes(WAL_MAGIC.len()).unwrap(), WAL_MAGIC);
    assert_eq!(r.u32().unwrap(), WAL_VERSION);
    let mut payloads = Vec::new();
    while !r.is_empty() {
        let len = r.u64().unwrap() as usize;
        let _checksum = r.u64().unwrap();
        payloads.push(r.bytes(len).unwrap().to_vec());
    }
    payloads
}

/// Reassembles a WAL from payloads, computing fresh (valid) checksums.
fn reframe(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.bytes(&WAL_MAGIC);
    w.u32(WAL_VERSION);
    for payload in payloads {
        w.u64(payload.len() as u64);
        w.u64(fnv1a64(payload));
        w.bytes(payload);
    }
    w.into_bytes()
}

#[test]
fn raw_byte_fuzz_never_panics_and_truncation_is_deterministic() {
    let base = base_wal();
    let mut mutator = Mutator::new(0x5EED_A109);
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    let mut panics = 0usize;
    for _ in 0..MUTANTS {
        let mutant = mutator.mutate(&base);
        if !survives(&mutant, &mut seen) {
            panics += 1;
        }
    }
    assert_eq!(panics, 0, "decode_wal panicked on {panics} of {MUTANTS} mutants");
    // Raw mutation must trip the header and frame gates in several distinct
    // typed ways; a collapse to one variant means the typed surface died.
    assert!(seen.len() >= 3, "only {} error variants observed: {seen:?}", seen.len());
}

#[test]
fn checksum_fixed_fuzz_reaches_the_payload_validator() {
    let base = base_wal();
    let payloads = split_payloads(&base);
    let mut mutator = Mutator::new(0xC0DE_A109);
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    let mut panics = 0usize;
    for i in 0..MUTANTS {
        // Corrupt one frame's payload, then re-frame with a valid checksum:
        // the decoder can no longer classify the damage as a torn tail, so
        // its payload validation must reject it with a typed error.
        let victim = i % payloads.len();
        let mut mutated = payloads.clone();
        mutated[victim] = mutator.mutate(&payloads[victim]);
        if !survives(&reframe(&mutated), &mut seen) {
            panics += 1;
        }
    }
    assert_eq!(panics, 0, "decode_wal panicked on {panics} of {MUTANTS} mutants");
    assert!(
        seen.contains("Malformed") || seen.contains("CountOverflow"),
        "no mutant reached the payload validator: {seen:?}"
    );
    assert!(seen.len() >= 3, "only {} error variants observed: {seen:?}", seen.len());
}

// --- The pinned hostile-WAL corpus -------------------------------------

/// Directory holding the checked-in fixtures (shared with the store corpus).
fn corpus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/data/stores"))
}

fn fixture(name: &str) -> Vec<u8> {
    let path = corpus_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read fixture {} ({e}); regenerate the corpus with \
             `cargo test -p ust-persist --test wal_fuzz -- --ignored`",
            path.display()
        )
    })
}

/// The torn-tail fixture: the base log cut seven bytes into its last frame.
/// Must decode *successfully* to the first two batches.
fn torn_tail_fixture() -> Vec<u8> {
    let mut bytes = encode_wal_header();
    bytes.extend_from_slice(&encode_frame(&base_batches()[0]));
    bytes.extend_from_slice(&encode_frame(&base_batches()[1]));
    let valid = bytes.len();
    bytes.extend_from_slice(&encode_frame(&base_batches()[2])[..7]);
    assert!(bytes.len() > valid);
    bytes
}

/// The corruption fixture: a checksum-*valid* frame whose payload has
/// non-increasing observation times. No torn write can produce it, so it
/// must stay a typed error forever.
fn bad_frame_fixture() -> Vec<u8> {
    let mut bytes = encode_wal_header();
    bytes.extend_from_slice(&encode_frame(&base_batches()[0]));
    bytes.extend_from_slice(&encode_frame(&[(
        9,
        vec![Observation::new(5, 0), Observation::new(5, 1)],
    )]));
    bytes
}

#[test]
fn torn_tail_fixture_truncates_to_its_pinned_prefix() {
    let decoded = decode_wal(&fixture("wal_torn_tail.wal")).expect("a torn tail is not an error");
    assert_eq!(decoded.batches, base_batches()[..2].to_vec());
    assert_eq!(decoded.torn_bytes(), 7);
    assert_eq!(decoded.observations, 5);
}

#[test]
fn bad_frame_fixture_yields_its_pinned_error() {
    let err = decode_wal(&fixture("wal_bad_frame.wal")).expect_err("corruption must not decode");
    assert_eq!(
        err,
        StoreError::Malformed { context: "wal append times not strictly increasing" }
    );
}

#[test]
fn checked_in_wal_fixtures_match_their_generators() {
    assert_eq!(
        fixture("wal_torn_tail.wal"),
        torn_tail_fixture(),
        "wal_torn_tail.wal drifted; regenerate with -- --ignored"
    );
    assert_eq!(
        fixture("wal_bad_frame.wal"),
        bad_frame_fixture(),
        "wal_bad_frame.wal drifted; regenerate with -- --ignored"
    );
}

/// Writes the WAL corpus. Run once (and re-check in the files) after a
/// deliberate format change; ignored in normal runs so the checked-in corpus
/// stays the authority.
#[test]
#[ignore = "writes the fixture corpus; run explicitly after a format change"]
fn regenerate_wal_fixtures() {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    std::fs::write(dir.join("wal_torn_tail.wal"), torn_tail_fixture()).unwrap();
    std::fs::write(dir.join("wal_bad_frame.wal"), bad_frame_fixture()).unwrap();
}
