//! # ust-index
//!
//! The UST-tree (Section 6 of the paper, originally introduced in \[25\]): a
//! spatio-temporal index over uncertain trajectories used to prune the vast
//! majority of database objects before any expensive probability computation.
//!
//! For every pair of consecutive observations of an object, the set of
//! possible `(time, location)` pairs (the "diamond") is conservatively
//! approximated by minimum bounding rectangles; the resulting space-time boxes
//! are indexed in an R\*-tree. A probabilistic NN query then uses classic
//! `dmin`/`dmax` reasoning:
//!
//! * an object can only be a ∀-nearest-neighbor **candidate** if, at *every*
//!   query timestamp, its minimum possible distance does not exceed the
//!   smallest maximum distance of any object (`C∀(q)` in the paper),
//! * an object can **influence** the result (reduce other objects'
//!   probabilities, or be a P∃NN result) if that holds at *some* timestamp
//!   (`I∀(q)`).
//!
//! The pruned candidate/influence sets are exactly what the sampling engine of
//! `ust-core` refines.

pub mod diamond;
pub mod par;
pub mod pruning;
pub mod tree;

pub use diamond::Diamond;
pub use pruning::PruningResult;
pub use tree::{IndexBuildStats, UstTree, UstTreeConfig};

pub use ust_markov::Timestamp;
pub use ust_spatial::StateId;
pub use ust_trajectory::ObjectId;

/// The fault points this crate registers with [`ust_fault`] (see the chaos
/// suite at the workspace root). `index.build.shard` panics inside one
/// UST-tree build shard, exercising the panic propagation of the scoped
/// fan-out in [`par`].
pub const FAULT_POINTS: &[&str] = &["index.build.shard"];
