//! Inside the machinery: forward-backward model adaptation and sampling.
//!
//! This example makes the core technical contribution of the paper tangible on
//! a single object:
//!
//! 1. it compares how many attempts the traditional rejection samplers (TS1,
//!    TS2) need to draw one observation-consistent trajectory versus the
//!    a-posteriori sampler (exactly one attempt, Figure 10),
//! 2. it shows how the predicted position error shrinks when observations are
//!    incorporated (the NO / F / FB / U / FBU comparison of Figure 12).
//!
//! Run with:
//! ```text
//! cargo run --release --example model_adaptation
//! ```

use pnnq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ust_core::effectiveness::{evaluate_variant, ModelVariant};
use ust_generator::objects::generate_objects;
use ust_sampling::{RejectionSampler, SegmentedSampler};

fn main() {
    let network = SyntheticNetworkConfig { num_states: 2_000, branching_factor: 8.0, seed: 31 }.generate();
    let model = network.distance_weighted_model(1.0);
    let objects = generate_objects(
        &network,
        &ObjectWorkloadConfig {
            num_objects: 1,
            lifetime: 40,
            horizon: 60,
            observation_interval: 10,
            lag: 0.5,
            standing_fraction: 0.0,
            seed: 32,
        },
        0,
    );
    let generated = &objects[0];
    let obs = generated.object.observation_pairs();
    println!("object with {} observations over [{}, {}]", obs.len(), obs[0].0, obs.last().unwrap().0);

    // --- 1. Sampling efficiency -----------------------------------------
    let mut rng = StdRng::seed_from_u64(1);
    let ts1 = RejectionSampler::new(&model, &obs).sample_one(&mut rng, 500_000);
    let ts2 = SegmentedSampler::new(&model, &obs).sample_one(&mut rng, 500_000);
    let adapted = AdaptedModel::build(&model, &obs).expect("observations are consistent");
    let posterior_sample = PosteriorSampler::new(&adapted).sample(&mut rng);
    println!("\nattempts needed for one observation-consistent trajectory:");
    println!(
        "  TS1 (full rejection):      {:>8} attempts{}",
        ts1.attempts,
        if ts1.succeeded() { "" } else { "  (budget exhausted!)" }
    );
    println!("  TS2 (segment-wise):        {:>8} attempts", ts2.attempts);
    println!("  FB  (a-posteriori model):  {:>8} attempt", 1);
    assert!(posterior_sample.consistent_with(&obs));

    // --- 2. Model adaptation effectiveness -------------------------------
    println!("\nmean predicted-position error vs. the held-out ground truth:");
    let space = network.space();
    for variant in ModelVariant::ALL {
        let series = evaluate_variant(&model, &generated.object, &generated.ground_truth, space, variant)
            .expect("adaptation succeeds");
        println!("  {:<4} {:.5}", variant.label(), series.mean_error());
    }

    // --- 3. A peek at the a-posteriori marginals -------------------------
    let mid = (adapted.start() + adapted.end()) / 2;
    let posterior = adapted.posterior_at(mid).unwrap();
    println!(
        "\na-posteriori distribution at t = {} has {} reachable states; most likely state {:?}",
        mid,
        posterior.support_size(),
        adapted.most_likely_state(mid)
    );
}
