//! The `ust-lint` command-line front-end.
//!
//! ```text
//! ust-lint check [--workspace] [--json] [--all-rules] [--config <path>] [paths…]
//! ust-lint model-check [--json]
//! ust-lint rules
//! ```
//!
//! Exit codes: `0` clean, `1` findings or model violations, `2` usage or
//! configuration errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ust_lint::claim_model::{self, Mutation};
use ust_lint::rules::{rule_summary, RULE_IDS};
use ust_lint::{check_tree, findings_to_json, CheckReport, Config, Mode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("model-check") => cmd_model_check(&args[1..]),
        Some("rules") => cmd_rules(),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("ust-lint: unknown command {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
ust-lint: repo-invariant static analysis for the pnnq workspace

USAGE:
  ust-lint check [--workspace] [--json] [--all-rules] [--config <path>] [paths…]
      Scan .rs sources for rule violations. With --workspace (or no paths),
      scans the whole tree from the workspace root using lint.toml; explicit
      paths scan just those files or directories. --all-rules ignores the
      configured rule scopes (fixture testing).
  ust-lint model-check [--json]
      Exhaustively explore the AdaptationCache claim protocol over every
      schedule of ≤3 model threads and every faulty subset.
  ust-lint rules
      List the rule catalog.
";

fn cmd_check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut all_rules = false;
    let mut workspace = false;
    let mut config_path: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--all-rules" => all_rules = true,
            "--workspace" => workspace = true,
            "--config" => match it.next() {
                Some(p) => config_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("ust-lint: --config needs a path");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("ust-lint: unknown flag {flag:?}\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let root = match workspace_root() {
        Some(root) => root,
        None => {
            eprintln!("ust-lint: cannot locate the workspace root (no Cargo.toml upward)");
            return ExitCode::from(2);
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config = if config_path.exists() {
        match Config::load(&config_path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("ust-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Config::default()
    };
    let mode = if all_rules { Mode::AllRules } else { Mode::Scoped };

    let targets: Vec<PathBuf> = if workspace || paths.is_empty() {
        vec![root.clone()]
    } else {
        paths
    };
    let mut report = CheckReport { findings: Vec::new(), files_checked: 0 };
    for target in &targets {
        match scan_target(&root, target, &config, mode) {
            Ok(part) => {
                report.findings.extend(part.findings);
                report.files_checked += part.files_checked;
            }
            Err(e) => {
                eprintln!("ust-lint: cannot scan {}: {e}", target.display());
                return ExitCode::from(2);
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));

    if json {
        print!("{}", findings_to_json(&report));
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        println!(
            "ust-lint: {} finding(s) across {} file(s)",
            report.findings.len(),
            report.files_checked
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Scans one target: a directory (walked) or a single file.
fn scan_target(
    root: &Path,
    target: &Path,
    config: &Config,
    mode: Mode,
) -> std::io::Result<CheckReport> {
    if target.is_dir() {
        return check_tree(target, config, mode);
    }
    let abs = if target.is_absolute() {
        target.to_path_buf()
    } else {
        std::env::current_dir()?.join(target)
    };
    let rel = abs
        .strip_prefix(root)
        .unwrap_or(&abs)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/");
    let contents = std::fs::read_to_string(&abs)?;
    let findings = ust_lint::rules::check_file(config, &rel, &contents, false, mode);
    Ok(CheckReport { findings, files_checked: 1 })
}

/// Ascends from the current directory to the outermost `Cargo.toml` that
/// declares a `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    let mut best: Option<PathBuf> = None;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            let is_workspace = std::fs::read_to_string(&manifest)
                .is_ok_and(|t| t.contains("[workspace]"));
            if is_workspace || best.is_none() {
                best = Some(dir.clone());
            }
            if is_workspace {
                return best;
            }
        }
        if !dir.pop() {
            return best;
        }
    }
}

fn cmd_model_check(args: &[String]) -> ExitCode {
    let json = args.iter().any(|a| a == "--json");
    let reports = claim_model::verify_protocol(claim_model::MAX_THREADS);
    let total_schedules: u64 = reports.iter().map(|r| r.schedules).sum();
    let violations: Vec<&String> = reports.iter().flat_map(|r| &r.violations).collect();

    // Sanity: the checker itself must be able to catch bugs — the broken
    // mutants have to produce violations, or a green run proves nothing.
    let mutants_caught = !claim_model::explore(2, 0b00, Mutation::SplitCheckClaim).clean()
        && !claim_model::explore(2, 0b00, Mutation::SkipPublishNotify).clean()
        && !claim_model::explore(2, 0b01, Mutation::SkipPanicNotify).clean();

    if json {
        let mut out = String::from("{\n  \"configs\": [");
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"threads\": {}, \"faulty_mask\": {}, \"schedules\": {}, \
                 \"violations\": {}}}",
                r.threads,
                r.faulty_mask,
                r.schedules,
                r.violations.len()
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"total_schedules\": {},\n  \"violations\": {},\n  \
             \"mutants_caught\": {}\n}}\n",
            total_schedules,
            violations.len(),
            mutants_caught
        ));
        print!("{out}");
    } else {
        println!("claim-protocol model check ({} thread configs):", reports.len());
        for r in &reports {
            println!(
                "  threads={} faulty={:#05b}: {:>6} schedules, {} violation(s)",
                r.threads,
                r.faulty_mask,
                r.schedules,
                r.violations.len()
            );
        }
        for v in &violations {
            println!("  VIOLATION: {v}");
        }
        println!(
            "total: {total_schedules} schedules explored; broken mutants caught: {mutants_caught}"
        );
    }
    if violations.is_empty() && mutants_caught {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_rules() -> ExitCode {
    println!("rule catalog (see DESIGN.md §7 for the full policy):");
    for rule in RULE_IDS {
        println!("  {rule}  {}", rule_summary(rule));
    }
    println!("  W000  {}", rule_summary("W000"));
    println!("  W001  {}", rule_summary("W001"));
    ExitCode::SUCCESS
}
