//! Figure 10: efficiency of sampling without model adaptation.
//!
//! Reports, per number of observations, the expected number of trajectory
//! generations needed to obtain one valid sample for the traditional rejection
//! sampler (TS1), the segment-wise sampler (TS2) and the forward-backward
//! a-posteriori sampler of the paper (FB, always exactly one). The paper shows
//! TS1 growing exponentially and TS2 roughly linearly, both far above 10⁵ even
//! for two observations, while FB needs a single attempt.

use ust_bench::sampling_efficiency::{measure_sampling_efficiency, SamplingEfficiencyConfig};
use ust_bench::{ExperimentReport, Row, RunScale, RunSettings};

fn main() {
    let settings = RunSettings::from_env();
    settings.reject_ingest_flags("fig10_sampling_efficiency");
    settings.reject_store_flag("fig10_sampling_efficiency");
    settings.reject_wal_flags("fig10_sampling_efficiency");
    settings.reject_deadline_flag("fig10_sampling_efficiency");
    let cfg = match settings.scale {
        RunScale::Quick => SamplingEfficiencyConfig {
            num_states: 500,
            max_observations: 4,
            trials: 3,
            attempt_cap: 50_000,
            observation_interval: 6,
            seed: settings.seed,
        },
        RunScale::Default => SamplingEfficiencyConfig {
            num_states: 2_000,
            max_observations: 6,
            trials: 5,
            attempt_cap: 200_000,
            observation_interval: 8,
            seed: settings.seed,
        },
        RunScale::Paper => SamplingEfficiencyConfig {
            num_states: 10_000,
            max_observations: 10,
            trials: 10,
            attempt_cap: 2_000_000,
            observation_interval: 10,
            seed: settings.seed,
        },
    };
    let mut report = ExperimentReport::new(
        "figure10_sampling_efficiency",
        "Expected number of trajectory generations per valid sample vs. number of observations \
         (paper: Figure 10; TS1 = full rejection, TS2 = segment-wise rejection, FB = a-posteriori \
         sampler; ts1_capped is the fraction of TS1 runs that hit the attempt budget)",
    );
    for row in measure_sampling_efficiency(&cfg) {
        report.push(
            Row::new(format!("observations={}", row.observations))
                .with("TS1", row.ts1_attempts)
                .with("TS2", row.ts2_attempts)
                .with("FB", row.fb_attempts)
                .with("ts1_capped", row.ts1_timeouts),
        );
    }
    report.print();
    report.maybe_write_json(&settings.json_path).expect("failed to write JSON report");
}
