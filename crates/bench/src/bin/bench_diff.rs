//! Diffs a fresh `BENCH_*.json` snapshot against its committed baseline.
//!
//! ```text
//! bench_diff --baseline BENCH_sampling.json --current BENCH_sampling.current.json
//! ```
//!
//! Exits 0 when every tracked metric is within tolerance
//! ([`ust_bench::perf::DiffTolerance`]), 1 with one line per finding when the
//! trajectory regressed, and 2 on usage or parse errors. CI runs this after
//! `bench_sampling_perf`; a failure means either a genuine regression or a
//! deliberate kernel change whose baseline must be refreshed and committed.

use ust_bench::json::Json;
use ust_bench::perf::{diff_reports, DiffTolerance};

fn usage_and_exit(message: &str) -> ! {
    if !message.is_empty() {
        eprintln!("error: {message}");
    }
    eprintln!("usage: bench_diff --baseline <path> --current <path>");
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage_and_exit(&format!("cannot read {path}: {e}")));
    Json::parse(&text).unwrap_or_else(|e| usage_and_exit(&format!("cannot parse {path}: {e:?}")))
}

fn main() {
    let mut baseline = None;
    let mut current = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline = args.next(),
            "--current" => current = args.next(),
            "--help" | "-h" => usage_and_exit(""),
            other => usage_and_exit(&format!("unknown argument: {other}")),
        }
    }
    let baseline_path = baseline.unwrap_or_else(|| usage_and_exit("--baseline is required"));
    let current_path = current.unwrap_or_else(|| usage_and_exit("--current is required"));
    let findings =
        diff_reports(&load(&baseline_path), &load(&current_path), &DiffTolerance::default());
    if findings.is_empty() {
        println!(
            "perf trajectory holds: {current_path} is within tolerance of {baseline_path}"
        );
        return;
    }
    eprintln!("perf trajectory regressed ({} finding(s)):", findings.len());
    for finding in &findings {
        eprintln!("  - {finding}");
    }
    std::process::exit(1);
}
