//! The artificial-data generator of Section 7.
//!
//! "Artificial data for our experiments was created in three steps: state
//! space generation, transition matrix construction and object creation.
//! First, the data generator constructs a two-dimensional Euclidean state
//! space, consisting of N states. Each of these states is drawn uniformly
//! from the [0, 1]² square. In order to construct a transition matrix, we
//! derive a graph by introducing edges between any point p and its neighbors
//! having a distance less than r = sqrt(b / (n·π)) with b denoting the average
//! branching factor of the underlying network. [...] The transition
//! probability of this entry is indirectly proportional to the distance
//! between the two vertices."
//!
//! Object creation (shortest-path motion, observation thinning, the lag
//! parameter `v`) lives in [`crate::objects`].

use crate::grid::GridIndex;
use crate::network::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use ust_spatial::{Point, StateId, StateSpace};

/// Configuration of the synthetic state-space/network generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticNetworkConfig {
    /// Number of states `N = |S|` (paper default: 100 000).
    pub num_states: usize,
    /// Average branching factor `b` of the network (paper default: 8).
    pub branching_factor: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for SyntheticNetworkConfig {
    fn default() -> Self {
        SyntheticNetworkConfig { num_states: 10_000, branching_factor: 8.0, seed: 0 }
    }
}

impl SyntheticNetworkConfig {
    /// The connection radius `r = sqrt(b / (N π))` that yields the requested
    /// average branching factor for uniformly distributed states.
    pub fn connection_radius(&self) -> f64 {
        (self.branching_factor / (self.num_states as f64 * std::f64::consts::PI)).sqrt()
    }

    /// Generates the network.
    pub fn generate(&self) -> Network {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let points: Vec<Point> = (0..self.num_states)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let radius = self.connection_radius();
        let grid = GridIndex::build(&points, radius.max(1e-9));
        let mut edges: Vec<(StateId, StateId)> = Vec::new();
        for (i, p) in points.iter().enumerate() {
            let id = i as StateId;
            for n in grid.within_radius(&points, p, radius, Some(id)) {
                if n > id {
                    edges.push((id, n));
                }
            }
        }
        let space = Arc::new(StateSpace::from_points(points));
        Network::new(space, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_formula_matches_paper() {
        let cfg = SyntheticNetworkConfig { num_states: 10_000, branching_factor: 8.0, seed: 1 };
        let r = cfg.connection_radius();
        assert!((r - (8.0 / (10_000.0 * std::f64::consts::PI)).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn generated_network_has_requested_size_and_roughly_the_branching_factor() {
        let cfg = SyntheticNetworkConfig { num_states: 2_000, branching_factor: 8.0, seed: 42 };
        let net = cfg.generate();
        assert_eq!(net.num_states(), 2_000);
        let degree = net.average_degree();
        // Boundary effects push the realised degree slightly below b.
        assert!(
            degree > 5.0 && degree < 10.0,
            "average degree {degree} too far from requested branching factor 8"
        );
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let cfg = SyntheticNetworkConfig { num_states: 500, branching_factor: 6.0, seed: 7 };
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.position(17), b.position(17));
        let c = SyntheticNetworkConfig { seed: 8, ..cfg }.generate();
        // Different seed gives (almost surely) different geometry.
        assert_ne!(a.position(17), c.position(17));
    }

    #[test]
    fn higher_branching_factor_adds_edges() {
        let lo = SyntheticNetworkConfig { num_states: 1_000, branching_factor: 6.0, seed: 3 }
            .generate();
        let hi = SyntheticNetworkConfig { num_states: 1_000, branching_factor: 10.0, seed: 3 }
            .generate();
        assert!(hi.num_edges() > lo.num_edges());
    }

    #[test]
    fn states_lie_in_the_unit_square() {
        let net = SyntheticNetworkConfig { num_states: 300, branching_factor: 8.0, seed: 5 }
            .generate();
        for (_, p) in net.space().iter() {
            assert!((0.0..=1.0).contains(&p.x));
            assert!((0.0..=1.0).contains(&p.y));
        }
    }
}
