//! Index-build benchmark: the UST-tree build and filter-phase trajectory at
//! the *maxima* of the paper's sweep axes (`--scale paper` = 500k states /
//! 20k objects), which the mid-point figure defaults never reach.
//!
//! Not a criterion micro-bench (`harness = false`): one build at paper scale
//! is minutes of work, so the bench runs each configuration once and reports
//! an [`ExperimentReport`] with the wall times in its meta — the same
//! machine-readable shape as the figure binaries.
//!
//! Measured configurations:
//!
//! * `build(serial)` — `build_threads = 1`, reach memo on: the deterministic
//!   baseline every other build must be byte-identical to.
//! * `build(sharded)` — `--build-threads` workers (default: available
//!   parallelism): the scoped per-object fan-out.
//! * `build(no-memo)` — serial with the reach memo disabled: re-runs the
//!   forward/backward BFS for every segment, measuring what the
//!   commute-geometry memo saves (skipped at paper scale, where running the
//!   un-memoized build twice would dominate the bench).
//! * `filter` — the streamed `prune` over the query workload on the shared
//!   build: the dense-bounds filter phase the engines actually run.
//!
//! Usage: `cargo bench -p ust-bench --bench index_build -- --scale paper`.

use std::time::Instant;
use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_bench::efficiency::{fnv_fold, FNV_OFFSET};
use ust_bench::{ExperimentReport, Row, RunScale, RunSettings};
use ust_core::Query;
use ust_index::{UstTree, UstTreeConfig};

/// FNV-1a digest of the full diamond stream (object ids, time intervals,
/// MBR bit patterns): byte-identical builds have equal digests.
fn index_digest(tree: &UstTree) -> u64 {
    let mut d = FNV_OFFSET;
    for diamond in tree.diamonds() {
        d = fnv_fold(d, u64::from(diamond.object));
        d = fnv_fold(d, u64::from(diamond.t_start));
        d = fnv_fold(d, u64::from(diamond.t_end));
        for r in std::iter::once(&diamond.mbr).chain(diamond.per_time.iter().flatten()) {
            for v in r.min.iter().chain(r.max.iter()) {
                d = fnv_fold(d, v.to_bits());
            }
        }
    }
    d
}

fn main() {
    let settings = RunSettings::from_env();
    settings.reject_ingest_flags("index_build");
    settings.reject_store_flag("index_build");
    settings.reject_wal_flags("index_build");
    let params = ScaleParams::for_scale(settings.scale);
    let (num_states, num_objects) = ScaleParams::index_build_target(settings.scale);
    let build_threads = settings.build_threads.unwrap_or(0);

    eprintln!("[index_build] dataset: {num_states} states, {num_objects} objects");
    let gen_start = Instant::now();
    let dataset =
        build_synthetic(&params, num_states, params.branching, num_objects, settings.seed);
    let queries = build_queries(&dataset, &params, settings.seed);
    eprintln!("[index_build] dataset generated in {:.1}s", gen_start.elapsed().as_secs_f64());

    let mut report = ExperimentReport::new(
        "index_build",
        "UST-tree build and filter phase at the paper sweep maxima (500k states / 20k objects \
         at --scale paper); rows: build(serial) = 1 thread + reach memo, build(sharded) = \
         --build-threads workers, build(no-memo) = serial with the memo disabled (quick/default \
         scales only), filter = streamed prune over the query workload; wall times are repeated \
         in the meta section",
    )
    .with_meta("num_states", num_states as f64)
    .with_meta("num_objects", num_objects as f64);

    // Serial baseline.
    let serial_cfg = UstTreeConfig { build_threads: 1, ..Default::default() };
    let serial = UstTree::build_with(&dataset.database, &serial_cfg);
    let serial_stats = *serial.build_stats();
    eprintln!(
        "[index_build] serial build: {:.1}s, {} diamonds, memo hit rate {:.1}%",
        serial_stats.build_time.as_secs_f64(),
        serial_stats.diamonds,
        serial_stats.memo_hit_rate() * 100.0
    );
    let serial_digest = index_digest(&serial);
    report.set_meta("build_seconds_serial", serial_stats.build_time.as_secs_f64());
    report.set_meta("diamonds", serial_stats.diamonds as f64);
    report.set_meta("segments", serial_stats.segments as f64);
    report.set_meta("reach_memo_hits", serial_stats.reach_memo_hits as f64);
    report.set_meta("reach_memo_hit_rate", serial_stats.memo_hit_rate());
    report.set_meta("peak_frontier", serial_stats.peak_frontier as f64);
    report.push(
        Row::new("build(serial)")
            .with("seconds", serial_stats.build_time.as_secs_f64())
            .with("threads", 1.0)
            .with("diamonds", serial_stats.diamonds as f64)
            .with("memo_hits", serial_stats.reach_memo_hits as f64),
    );

    // Sharded build; must be byte-identical to the serial baseline.
    let sharded_cfg = UstTreeConfig { build_threads, ..Default::default() };
    let sharded = UstTree::build_with(&dataset.database, &sharded_cfg);
    let sharded_stats = *sharded.build_stats();
    eprintln!(
        "[index_build] sharded build ({} threads): {:.1}s",
        sharded_stats.build_threads,
        sharded_stats.build_time.as_secs_f64()
    );
    let identical = index_digest(&sharded) == serial_digest;
    assert!(identical, "sharded build diverged from the serial baseline");
    report.set_meta("build_seconds_sharded", sharded_stats.build_time.as_secs_f64());
    report.set_meta("build_threads", sharded_stats.build_threads as f64);
    report.set_meta("sharded_identical", f64::from(identical));
    report.push(
        Row::new("build(sharded)")
            .with("seconds", sharded_stats.build_time.as_secs_f64())
            .with("threads", sharded_stats.build_threads as f64)
            .with("diamonds", sharded_stats.diamonds as f64)
            .with("memo_hits", sharded_stats.reach_memo_hits as f64),
    );

    // No-memo baseline: what the commute-geometry memo saves. Skipped at
    // paper scale — the whole point of the memo is that the un-memoized BFS
    // sweep is too slow there.
    if settings.scale != RunScale::Paper {
        let no_memo_cfg =
            UstTreeConfig { build_threads: 1, reach_memo: false, ..Default::default() };
        let no_memo = UstTree::build_with(&dataset.database, &no_memo_cfg);
        let no_memo_stats = *no_memo.build_stats();
        assert_eq!(index_digest(&no_memo), serial_digest, "memo changed the built index");
        let speedup = no_memo_stats.build_time.as_secs_f64()
            / serial_stats.build_time.as_secs_f64().max(1e-12);
        report.set_meta("build_seconds_no_memo", no_memo_stats.build_time.as_secs_f64());
        report.set_meta("memo_speedup", speedup);
        report.push(
            Row::new("build(no-memo)")
                .with("seconds", no_memo_stats.build_time.as_secs_f64())
                .with("threads", 1.0)
                .with("diamonds", no_memo_stats.diamonds as f64)
                .with("memo_hits", 0.0),
        );
    }

    // Filter phase: the streamed dense-bounds prune over the workload.
    let start = Instant::now();
    let mut candidates = 0usize;
    let mut influencers = 0usize;
    for spec in &queries.queries {
        let query = Query::at_point(spec.location, spec.times.iter().copied())
            .expect("workload queries are well-formed");
        let result = serial.prune(query.times(), |t| {
            query.position_at(t).expect("query validated")
        });
        candidates += result.num_candidates();
        influencers += result.num_influencers();
    }
    let filter_seconds = start.elapsed().as_secs_f64();
    let n = queries.queries.len().max(1) as f64;
    report.set_meta("filter_seconds_per_query", filter_seconds / n);
    report.push(
        Row::new("filter")
            .with("seconds", filter_seconds / n)
            .with("threads", 1.0)
            .with("|C(q)|", candidates as f64 / n)
            .with("|I(q)|", influencers as f64 / n),
    );

    report.print();
    report.maybe_write_json(&settings.json_path).expect("failed to write JSON report");
}
