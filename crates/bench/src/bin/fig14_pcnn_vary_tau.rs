//! Figure 14: PCNN query efficiency while varying the probability threshold τ.
//!
//! Paper sweep: τ ∈ {0.1, 0.5, 0.9}. Reported series: the model-adaptation
//! time (TS), the sampling + Apriori lattice time (SA) and the number of
//! qualifying timestamp sets. The paper observes that small thresholds blow up
//! both the lattice (near-exponential in |T|) and the result set, while large
//! thresholds make the query cheap.

use ust_bench::continuous::measure_pcnn;
use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_bench::{ExperimentReport, Row, RunSettings};

fn main() {
    let settings = RunSettings::from_env();
    let params = ScaleParams::for_scale(settings.scale);
    let dataset = build_synthetic(
        &params,
        params.num_states,
        params.branching,
        params.num_objects,
        settings.seed,
    );
    let queries = build_queries(&dataset, &params, settings.seed);
    let mut report = ExperimentReport::new(
        "figure14_pcnn_vary_tau",
        "PCNN efficiency while varying the probability threshold tau \
         (paper: Figure 14; TS/SA in seconds, timestamp sets = qualifying (object, set) pairs)",
    );
    for tau in [0.1, 0.5, 0.9] {
        eprintln!("[fig14] tau = {tau}");
        let m = measure_pcnn(&dataset, &queries, params.num_samples, tau, settings.seed);
        report.push(
            Row::new(format!("tau={tau}"))
                .with("TS", m.ts_seconds)
                .with("SA", m.sa_seconds)
                .with("#TimestampSets", m.timestamp_sets)
                .with("#CandidateSets", m.candidate_sets),
        );
    }
    report.print();
    report.maybe_write_json(&settings.json_path).expect("failed to write JSON report");
}
