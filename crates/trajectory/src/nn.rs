//! Nearest-neighbor primitives on certain trajectories.
//!
//! Inside one *possible world* every object has a certain trajectory, and the
//! classic trajectory-NN questions of [5, 6, 7, 8, 20, 21] apply:
//!
//! * which objects are nearest neighbors of the query at a timestamp `t`,
//! * which objects are nearest neighbors at *all* / *some* timestamps of `T`,
//! * which objects belong to the k-nearest-neighbor set at a timestamp.
//!
//! Ties are handled according to the paper's definitions, which use
//! `d(q(t), o(t)) ≤ d(q(t), o'(t))`: every object achieving the minimum
//! distance *is* a nearest neighbor. An object whose trajectory does not
//! cover `t` neither qualifies nor prunes at that timestamp.
//!
//! The Monte-Carlo engine in `ust-core` evaluates these primitives once per
//! sampled world and averages the outcomes into probabilities.

use crate::certain::Trajectory;
use crate::object::ObjectId;
use crate::timemask::TimeMask;
use crate::Timestamp;
use rustc_hash::FxHashMap;
use std::borrow::Borrow;
use ust_spatial::{Point, StateSpace};

/// All objects that are nearest neighbors of `q` at time `t` in the given
/// world (ties included). Objects not covering `t` are ignored.
///
/// The world is generic over [`Borrow<Trajectory>`], so both borrowed views
/// (`&[(ObjectId, &Trajectory)]`) and owned possible-world storage
/// (`&[(ObjectId, Trajectory)]`) are accepted without building an
/// intermediate reference `Vec` — the Monte-Carlo engine calls this once per
/// sampled world, so that allocation used to run 10 000× per query.
pub fn nn_objects_at<T: Borrow<Trajectory>>(
    world: &[(ObjectId, T)],
    space: &StateSpace,
    q: &Point,
    t: Timestamp,
) -> Vec<ObjectId> {
    let mut best = f64::INFINITY;
    let mut out: Vec<ObjectId> = Vec::new();
    for (id, tr) in world {
        let (id, tr) = (*id, tr.borrow());
        let Some(s) = tr.state_at(t) else { continue };
        let d = space.position(s).dist2(q);
        if d < best {
            best = d;
            out.clear();
            out.push(id);
        } else if d == best {
            out.push(id);
        }
    }
    out
}

/// All objects in the k-nearest-neighbor set of `q` at time `t`: every object
/// whose distance is at most the k-th smallest distance (so ties at the
/// boundary are included). Objects not covering `t` are ignored.
pub fn knn_members_at<T: Borrow<Trajectory>>(
    world: &[(ObjectId, T)],
    space: &StateSpace,
    q: &Point,
    t: Timestamp,
    k: usize,
) -> Vec<ObjectId> {
    if k == 0 {
        return Vec::new();
    }
    let mut dists: Vec<(f64, ObjectId)> = world
        .iter()
        .filter_map(|(id, tr)| {
            tr.borrow().state_at(t).map(|s| (space.position(s).dist2(q), *id))
        })
        .collect();
    if dists.is_empty() {
        return Vec::new();
    }
    dists.sort_by(|a, b| a.0.total_cmp(&b.0));
    let cutoff = dists[(k - 1).min(dists.len() - 1)].0;
    dists.into_iter().filter(|&(d, _)| d <= cutoff).map(|(_, id)| id).collect()
}

/// Per-object nearest-neighbor membership over a set of query timestamps,
/// evaluated inside one possible world.
#[derive(Debug, Clone)]
pub struct NnTimeProfile {
    times: Vec<Timestamp>,
    masks: FxHashMap<ObjectId, TimeMask>,
}

impl NnTimeProfile {
    /// Computes the profile for `k = 1` (plain nearest neighbors).
    pub fn compute<T: Borrow<Trajectory>>(
        world: &[(ObjectId, T)],
        space: &StateSpace,
        times: &[Timestamp],
        query_pos: impl Fn(Timestamp) -> Point,
    ) -> Self {
        Self::compute_knn(world, space, times, query_pos, 1)
    }

    /// Computes the profile for general `k`: bit `i` of an object's mask is
    /// set iff the object belongs to the kNN set of the query at `times[i]`.
    ///
    /// Like [`nn_objects_at`], the world is generic over
    /// [`Borrow<Trajectory>`] so a sampled possible world's owned trajectory
    /// storage can be evaluated without first materialising a reference `Vec`.
    pub fn compute_knn<T: Borrow<Trajectory>>(
        world: &[(ObjectId, T)],
        space: &StateSpace,
        times: &[Timestamp],
        query_pos: impl Fn(Timestamp) -> Point,
        k: usize,
    ) -> Self {
        let mut masks: FxHashMap<ObjectId, TimeMask> = FxHashMap::default();
        for (i, &t) in times.iter().enumerate() {
            let q = query_pos(t);
            let members = if k == 1 {
                nn_objects_at(world, space, &q, t)
            } else {
                knn_members_at(world, space, &q, t, k)
            };
            for id in members {
                masks
                    .entry(id)
                    .or_insert_with(|| TimeMask::new(times.len()))
                    .set(i);
            }
        }
        NnTimeProfile { times: times.to_vec(), masks }
    }

    /// The query timestamps this profile covers.
    pub fn times(&self) -> &[Timestamp] {
        &self.times
    }

    /// The membership mask of an object (`None` if it is never a NN).
    pub fn mask(&self, id: ObjectId) -> Option<&TimeMask> {
        self.masks.get(&id)
    }

    /// Objects that are a nearest neighbor at least once, with their masks.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &TimeMask)> {
        self.masks.iter().map(|(&id, m)| (id, m))
    }

    /// Whether `id` is a nearest neighbor at *every* query timestamp
    /// (the ∀ event of Definition 2, evaluated in this world).
    pub fn is_forall_nn(&self, id: ObjectId) -> bool {
        self.masks.get(&id).map(|m| m.all()).unwrap_or(false)
    }

    /// Whether `id` is a nearest neighbor at *some* query timestamp
    /// (the ∃ event of Definition 1, evaluated in this world).
    pub fn is_exists_nn(&self, id: ObjectId) -> bool {
        self.masks.get(&id).map(|m| m.any()).unwrap_or(false)
    }

    /// Whether `id` is a nearest neighbor at every timestamp indexed by the
    /// set bits of `subset` (used by the PCNN Apriori lattice).
    pub fn covers_subset(&self, id: ObjectId, subset: &TimeMask) -> bool {
        match self.masks.get(&id) {
            Some(m) => m.contains_all(subset),
            None => !subset.any(),
        }
    }

    /// Maximal runs of consecutive query timestamps at which `id` is a nearest
    /// neighbor, as inclusive `(from, to)` timestamp pairs. This is the
    /// certain-trajectory continuous-NN answer of [8, 21] inside this world.
    pub fn nn_intervals(&self, id: ObjectId) -> Vec<(Timestamp, Timestamp)> {
        let Some(mask) = self.masks.get(&id) else { return Vec::new() };
        let mut out = Vec::new();
        let mut run_start: Option<usize> = None;
        for i in 0..self.times.len() {
            let set = mask.get(i);
            let contiguous = i > 0 && self.times[i] == self.times[i - 1] + 1;
            match (set, run_start) {
                (true, None) => run_start = Some(i),
                (true, Some(s)) if !contiguous => {
                    out.push((self.times[s], self.times[i - 1]));
                    run_start = Some(i);
                }
                (false, Some(s)) => {
                    out.push((self.times[s], self.times[i - 1]));
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = run_start {
            out.push((self.times[s], self.times[self.times.len() - 1]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four states on a line at x = 0, 1, 2, 3.
    fn space() -> StateSpace {
        StateSpace::from_points(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
        ])
    }

    #[test]
    fn nn_at_single_timestamp() {
        let sp = space();
        let a = Trajectory::new(0, vec![0, 1, 2]);
        let b = Trajectory::new(0, vec![3, 3, 3]);
        let world = vec![(1u32, &a), (2u32, &b)];
        let q = Point::new(0.0, 0.0);
        assert_eq!(nn_objects_at(&world, &sp, &q, 0), vec![1]);
        assert_eq!(nn_objects_at(&world, &sp, &q, 2), vec![1]);
        // Query at x=2.5: a is at x=2, b at x=3 -> a closer at t=2.
        assert_eq!(nn_objects_at(&world, &sp, &Point::new(2.6, 0.0), 2), vec![2]);
    }

    #[test]
    fn ties_make_both_objects_nearest_neighbors() {
        let sp = space();
        let a = Trajectory::new(0, vec![0]);
        let b = Trajectory::new(0, vec![2]);
        let world = vec![(1u32, &a), (2u32, &b)];
        let q = Point::new(1.0, 0.0);
        let mut nn = nn_objects_at(&world, &sp, &q, 0);
        nn.sort_unstable();
        assert_eq!(nn, vec![1, 2]);
    }

    #[test]
    fn objects_outside_their_lifetime_are_ignored() {
        let sp = space();
        let a = Trajectory::new(5, vec![0, 0]);
        let b = Trajectory::new(0, vec![3, 3, 3, 3, 3, 3, 3]);
        let world = vec![(1u32, &a), (2u32, &b)];
        let q = Point::new(0.0, 0.0);
        // At t=0 only b exists even though a would be closer.
        assert_eq!(nn_objects_at(&world, &sp, &q, 0), vec![2]);
        assert_eq!(nn_objects_at(&world, &sp, &q, 5), vec![1]);
        // At a time no object covers, nobody is NN.
        assert!(nn_objects_at(&world, &sp, &q, 20).is_empty());
    }

    #[test]
    fn knn_membership_with_ties() {
        let sp = space();
        let a = Trajectory::new(0, vec![0]);
        let b = Trajectory::new(0, vec![1]);
        let c = Trajectory::new(0, vec![2]);
        let d = Trajectory::new(0, vec![2]);
        let world = vec![(1u32, &a), (2u32, &b), (3u32, &c), (4u32, &d)];
        let q = Point::new(0.0, 0.0);
        assert_eq!(knn_members_at(&world, &sp, &q, 0, 1), vec![1]);
        let mut k2 = knn_members_at(&world, &sp, &q, 0, 2);
        k2.sort_unstable();
        assert_eq!(k2, vec![1, 2]);
        // k = 3: the third-smallest distance is shared by c and d, both join.
        let mut k3 = knn_members_at(&world, &sp, &q, 0, 3);
        k3.sort_unstable();
        assert_eq!(k3, vec![1, 2, 3, 4]);
        assert!(knn_members_at(&world, &sp, &q, 0, 0).is_empty());
        // k larger than the world size returns everyone alive.
        assert_eq!(knn_members_at(&world, &sp, &q, 0, 10).len(), 4);
    }

    #[test]
    fn time_profile_forall_and_exists() {
        let sp = space();
        // a stays at x=0, b walks 3,2,1 -> at t=2 b (x=1) is closer to q=x1.1? Let's use q at x=0.
        let a = Trajectory::new(0, vec![0, 0, 0]);
        let b = Trajectory::new(0, vec![3, 2, 0]);
        let world = vec![(1u32, &a), (2u32, &b)];
        let times = vec![0, 1, 2];
        let profile = NnTimeProfile::compute(&world, &sp, &times, |_| Point::new(0.0, 0.0));
        assert!(profile.is_forall_nn(1));
        assert!(profile.is_exists_nn(1));
        assert!(!profile.is_forall_nn(2));
        assert!(profile.is_exists_nn(2), "b ties with a at t=2");
        assert!(!profile.is_exists_nn(99));
        assert_eq!(profile.mask(1).unwrap().count_ones(), 3);
        assert_eq!(profile.mask(2).unwrap().count_ones(), 1);
    }

    #[test]
    fn time_profile_subset_and_intervals() {
        let sp = space();
        // b is NN at times 0,1 and 3 (non-contiguous).
        let a = Trajectory::new(0, vec![3, 3, 0, 3]);
        let b = Trajectory::new(0, vec![0, 0, 3, 0]);
        let world = vec![(1u32, &a), (2u32, &b)];
        let times = vec![0, 1, 2, 3];
        let profile = NnTimeProfile::compute(&world, &sp, &times, |_| Point::new(0.0, 0.0));
        let subset01 = TimeMask::from_indices(4, [0, 1]);
        let subset02 = TimeMask::from_indices(4, [0, 2]);
        assert!(profile.covers_subset(2, &subset01));
        assert!(!profile.covers_subset(2, &subset02));
        assert_eq!(profile.nn_intervals(2), vec![(0, 1), (3, 3)]);
        assert_eq!(profile.nn_intervals(1), vec![(2, 2)]);
        assert_eq!(profile.nn_intervals(42), Vec::<(Timestamp, Timestamp)>::new());
    }

    #[test]
    fn owned_trajectory_worlds_need_no_reference_vec() {
        let sp = space();
        // The same world twice: once as owned pairs (the possible-world
        // storage), once as the classic borrowed view. Results must agree.
        let owned: Vec<(ObjectId, Trajectory)> = vec![
            (1, Trajectory::new(0, vec![0, 0, 0])),
            (2, Trajectory::new(0, vec![3, 2, 0])),
        ];
        let borrowed: Vec<(ObjectId, &Trajectory)> =
            owned.iter().map(|(id, tr)| (*id, tr)).collect();
        let q = Point::new(0.0, 0.0);
        assert_eq!(
            nn_objects_at(&owned, &sp, &q, 1),
            nn_objects_at(&borrowed, &sp, &q, 1)
        );
        assert_eq!(
            knn_members_at(&owned, &sp, &q, 0, 2),
            knn_members_at(&borrowed, &sp, &q, 0, 2)
        );
        let times = vec![0, 1, 2];
        let a = NnTimeProfile::compute(&owned, &sp, &times, |_| q);
        let b = NnTimeProfile::compute(&borrowed, &sp, &times, |_| q);
        for id in [1u32, 2] {
            assert_eq!(a.mask(id), b.mask(id));
        }
    }

    #[test]
    fn time_profile_with_gap_in_query_times() {
        let sp = space();
        let a = Trajectory::new(0, vec![0; 10]);
        let world = vec![(1u32, &a)];
        // Non-contiguous query times: intervals must not merge across the gap.
        let times = vec![0, 1, 5, 6];
        let profile = NnTimeProfile::compute(&world, &sp, &times, |_| Point::new(0.0, 0.0));
        assert_eq!(profile.nn_intervals(1), vec![(0, 1), (5, 6)]);
    }
}
