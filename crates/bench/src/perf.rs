//! Sampling-kernel performance trajectory (`BENCH_sampling.json`).
//!
//! The repository commits one performance snapshot per tracked subsystem as a
//! `BENCH_*.json` file at the repo root; CI re-measures the same quick-scale
//! configuration on every push and diffs it against the committed baseline
//! with generous tolerances, so a silent order-of-magnitude regression in a
//! hot loop fails the build instead of landing unnoticed. This module holds
//! the first such trajectory: the Monte-Carlo sampling kernel.
//!
//! Two measurement families feed the snapshot:
//!
//! * **draws/sec** — raw categorical-draw throughput on synthetic rows of
//!   support 4 / 32 / 256, alias-table ([`AliasKernel`]) vs. the reference
//!   inverse-CDF scan ([`SparseDist::sample_with`]), both fed the identical
//!   pre-drawn `u` buffer. The `alias_speedup` column is the headline number:
//!   O(1) vs. O(support) shows up as a speedup that grows with the support.
//! * **worlds/sec** — end-to-end possible-world sampling over adapted models
//!   of a synthetic workload: the block (SoA, [`WorldBlock`]) path the engine
//!   uses vs. per-world [`WorldSampler::sample_world_prefix_into`] draws.
//!
//! Per-phase wall times (adaptation incl. alias construction, the draw
//! micro-bench, both world loops) land in the report `meta`.
//!
//! [`diff_reports`] implements the CI gate: throughputs may wobble by the
//! configured factors across runner generations, but a drop beyond them — or
//! an alias speedup at the largest support falling under its absolute floor —
//! is a regression finding.

use crate::json::Json;
use crate::report::{ExperimentReport, Row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;
use ust_generator::{ObjectWorkloadConfig, SyntheticNetworkConfig};
use ust_markov::{AdaptedModel, AliasKernel, SparseDist};
use ust_sampling::{PossibleWorld, WorldBlock, WorldSampler, WORLD_BLOCK_WIDTH};

/// Configuration of the sampling-kernel performance snapshot.
#[derive(Debug, Clone)]
pub struct SamplingPerfConfig {
    /// Row supports the draw micro-bench sweeps over.
    pub supports: Vec<usize>,
    /// Categorical draws per support (per sampler).
    pub draws: usize,
    /// Number of states of the synthetic network behind the world bench.
    pub num_states: usize,
    /// Objects per possible world.
    pub num_objects: usize,
    /// Possible worlds sampled per world-bench path.
    pub worlds: usize,
    /// RNG seed for workload generation and the `u` buffers.
    pub seed: u64,
}

impl SamplingPerfConfig {
    /// The CI / smoke configuration: runs in well under a second but still
    /// separates O(1) alias draws from O(support) scans cleanly.
    pub fn quick(seed: u64) -> Self {
        SamplingPerfConfig {
            supports: vec![4, 32, 256],
            draws: 400_000,
            num_states: 800,
            num_objects: 12,
            worlds: 1024,
            seed,
        }
    }

    /// The default laptop-scale configuration.
    pub fn default_scale(seed: u64) -> Self {
        SamplingPerfConfig {
            draws: 4_000_000,
            num_states: 2_000,
            num_objects: 24,
            worlds: 8_192,
            ..Self::quick(seed)
        }
    }
}

/// A synthetic normalized row of the given support with uneven probabilities.
fn synthetic_row(support: usize, seed: u64) -> SparseDist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dist =
        SparseDist::from_pairs((0..support as u32).map(|s| (s, rng.gen::<f64>() + 0.01)));
    assert!(dist.normalize(), "synthetic weights always carry mass");
    dist
}

/// Times `draws` samples of `f` over the pre-drawn `u` buffer and returns
/// draws per second. The state sum is black-boxed so the loop cannot be
/// optimised away.
fn time_draws(us: &[f64], mut f: impl FnMut(f64) -> u32) -> f64 {
    let start = Instant::now();
    let mut acc = 0u64;
    for &u in us {
        acc = acc.wrapping_add(f(u) as u64);
    }
    black_box(acc);
    us.len() as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Runs the full measurement and assembles the `sampling_perf` report.
pub fn measure_sampling_perf(cfg: &SamplingPerfConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "sampling_perf",
        "Monte-Carlo sampling kernel trajectory: alias vs inverse-CDF draws/sec per row \
         support, and block (SoA) vs per-world worlds/sec over adapted models",
    );
    report.set_meta("seed", cfg.seed as f64);
    report.set_meta("draws_per_support", cfg.draws as f64);
    report.set_meta("worlds", cfg.worlds as f64);
    report.set_meta("num_objects", cfg.num_objects as f64);

    // ------------------------------------------------------------------
    // Draw micro-bench: alias vs inverse-CDF on one shared u buffer.
    // ------------------------------------------------------------------
    let draw_bench_start = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD2A3);
    let us: Vec<f64> = (0..cfg.draws).map(|_| rng.gen::<f64>()).collect();
    for &support in &cfg.supports {
        let row = synthetic_row(support, cfg.seed.wrapping_add(support as u64));
        let kernel = AliasKernel::from_steps([[(0u32, &row)]]);
        let alias = time_draws(&us, |u| kernel.sample(0, 0, u).expect("non-empty row"));
        let cdf = time_draws(&us, |u| row.sample_with(u).expect("non-empty row"));
        report.push(
            Row::new(format!("support={support}"))
                .with("alias_draws_per_sec", alias)
                .with("cdf_draws_per_sec", cdf)
                .with("alias_speedup", alias / cdf),
        );
    }
    report.set_meta("draw_bench_ms", draw_bench_start.elapsed().as_secs_f64() * 1e3);

    // ------------------------------------------------------------------
    // World bench: block (SoA) vs per-world sampling over adapted models.
    // ------------------------------------------------------------------
    let network = SyntheticNetworkConfig {
        num_states: cfg.num_states,
        branching_factor: 8.0,
        seed: cfg.seed,
    }
    .generate();
    let model = network.distance_weighted_model(1.0);
    let objects = ust_generator::objects::generate_objects(
        &network,
        &ObjectWorkloadConfig {
            num_objects: cfg.num_objects,
            lifetime: 48,
            horizon: 64,
            observation_interval: 12,
            lag: 0.5,
            standing_fraction: 0.0,
            seed: cfg.seed.wrapping_add(1),
        },
        0,
    );
    let adapt_start = Instant::now();
    let models: Vec<_> = objects
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let obs = g.object.observation_pairs();
            let adapted = AdaptedModel::build(&model, &obs).expect("generated observations adapt");
            (i as u32, std::sync::Arc::new(adapted))
        })
        .collect();
    report.set_meta("adapt_ms", adapt_start.elapsed().as_secs_f64() * 1e3);
    let horizon = models.iter().map(|(_, m)| m.end()).max().unwrap_or(0);
    let sampler = WorldSampler::from_models(models);

    let block_start = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut block = WorldBlock::for_sampler(&sampler, horizon, WORLD_BLOCK_WIDTH);
    let mut remaining = cfg.worlds;
    let mut checksum = 0u64;
    while remaining > 0 {
        let count = WORLD_BLOCK_WIDTH.min(remaining);
        block.fill(&mut rng, count);
        checksum = checksum.wrapping_add(block.state(0, horizon.min(1), 0).unwrap_or(0) as u64);
        remaining -= count;
    }
    black_box(checksum);
    let block_elapsed = block_start.elapsed();
    report.set_meta("block_sample_ms", block_elapsed.as_secs_f64() * 1e3);

    let per_world_start = Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut world = PossibleWorld::empty();
    for _ in 0..cfg.worlds {
        sampler.sample_world_prefix_into(&mut rng, &mut world, horizon);
        black_box(world.len());
    }
    let per_world_elapsed = per_world_start.elapsed();
    report.set_meta("perworld_sample_ms", per_world_elapsed.as_secs_f64() * 1e3);

    let block_wps = cfg.worlds as f64 / block_elapsed.as_secs_f64().max(1e-9);
    let per_world_wps = cfg.worlds as f64 / per_world_elapsed.as_secs_f64().max(1e-9);
    report.push(
        Row::new("worlds")
            .with("block_worlds_per_sec", block_wps)
            .with("perworld_worlds_per_sec", per_world_wps),
    );
    report
}

/// Tolerances of the perf-trajectory diff.
///
/// Throughputs vary a lot across CI runner generations and load, so the
/// factors are deliberately generous — the gate exists to catch
/// order-of-magnitude regressions, not 10% wobble. The absolute
/// `min_top_alias_speedup` floor is machine-independent: both samplers run on
/// the same machine in the same process, so their *ratio* is stable, and the
/// alias kernel beating the linear scan at the largest support is the very
/// property the kernel exists for.
#[derive(Debug, Clone, Copy)]
pub struct DiffTolerance {
    /// A `*_per_sec` metric may drop to `baseline / throughput_factor`.
    pub throughput_factor: f64,
    /// A `*_speedup` metric may drop to `baseline / speedup_factor`.
    pub speedup_factor: f64,
    /// Absolute floor for `alias_speedup` on the largest-support row.
    pub min_top_alias_speedup: f64,
}

impl Default for DiffTolerance {
    fn default() -> Self {
        DiffTolerance { throughput_factor: 5.0, speedup_factor: 2.0, min_top_alias_speedup: 1.2 }
    }
}

/// The floor a metric may sink to before the diff flags it, `None` if the
/// metric kind is informational only.
fn metric_floor(name: &str, baseline: f64, tol: &DiffTolerance) -> Option<f64> {
    if name.ends_with("_per_sec") {
        Some(baseline / tol.throughput_factor)
    } else if name.ends_with("_speedup") {
        Some(baseline / tol.speedup_factor)
    } else {
        None
    }
}

/// Diffs a current `sampling_perf` report against the committed baseline.
/// Returns one human-readable finding per regression; an empty vector means
/// the trajectory holds.
pub fn diff_reports(baseline: &Json, current: &Json, tol: &DiffTolerance) -> Vec<String> {
    let mut findings = Vec::new();
    let Some(base_rows) = baseline.get("rows").as_array() else {
        return vec!["baseline has no rows array".to_string()];
    };
    let Some(cur_rows) = current.get("rows").as_array() else {
        return vec!["current report has no rows array".to_string()];
    };
    let find_row = |rows: &'_ [Json], label: &str| -> Option<usize> {
        rows.iter().position(|r| r.get("label").as_str() == Some(label))
    };
    let mut top_support: Option<(usize, String)> = None;
    for base_row in base_rows {
        let Some(label) = base_row.get("label").as_str() else {
            findings.push("baseline row without a label".to_string());
            continue;
        };
        if let Some(support) = label.strip_prefix("support=").and_then(|s| s.parse().ok()) {
            if top_support.as_ref().is_none_or(|(s, _)| *s < support) {
                top_support = Some((support, label.to_string()));
            }
        }
        let Some(cur_idx) = find_row(cur_rows, label) else {
            findings.push(format!("row '{label}' missing from the current report"));
            continue;
        };
        let cur_values = cur_rows[cur_idx].get("values");
        let Json::Object(base_values) = base_row.get("values") else {
            findings.push(format!("baseline row '{label}' has no values object"));
            continue;
        };
        for (name, value) in base_values {
            let Some(base) = value.as_f64() else { continue };
            let Some(floor) = metric_floor(name, base, tol) else { continue };
            match cur_values.get(name).as_f64() {
                Some(cur) if cur < floor => findings.push(format!(
                    "{label}/{name} regressed: {cur:.2} vs baseline {base:.2} \
                     (floor {floor:.2})"
                )),
                Some(_) => {}
                None => findings.push(format!("{label}/{name} missing from the current report")),
            }
        }
    }
    // The headline property gets an absolute, machine-independent gate.
    if let Some((_, label)) = top_support {
        if let Some(idx) = find_row(cur_rows, &label) {
            match cur_rows[idx].get("values").get("alias_speedup").as_f64() {
                Some(speedup) if speedup < tol.min_top_alias_speedup => findings.push(format!(
                    "{label}/alias_speedup {speedup:.2} is under the absolute floor {:.2}: \
                     the alias kernel no longer beats the linear CDF scan",
                    tol.min_top_alias_speedup
                )),
                Some(_) => {}
                None => findings
                    .push(format!("{label}/alias_speedup missing from the current report")),
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_measurement_produces_the_expected_shape() {
        let cfg = SamplingPerfConfig {
            supports: vec![4, 64],
            draws: 20_000,
            num_states: 200,
            num_objects: 3,
            worlds: 128,
            seed: 5,
        };
        let report = measure_sampling_perf(&cfg);
        assert_eq!(report.rows.len(), 3);
        for support_row in &report.rows[..2] {
            assert!(support_row.value("alias_draws_per_sec").unwrap() > 0.0);
            assert!(support_row.value("cdf_draws_per_sec").unwrap() > 0.0);
            assert!(support_row.value("alias_speedup").unwrap() > 0.0);
        }
        let worlds = &report.rows[2];
        assert!(worlds.value("block_worlds_per_sec").unwrap() > 0.0);
        assert!(worlds.value("perworld_worlds_per_sec").unwrap() > 0.0);
        for key in ["adapt_ms", "draw_bench_ms", "block_sample_ms", "perworld_sample_ms"] {
            assert!(
                report.meta.iter().any(|(n, v)| n == key && *v >= 0.0),
                "meta key {key} present"
            );
        }
    }

    fn report_json(alias: f64, cdf: f64, block: f64) -> Json {
        let mut r = ExperimentReport::new("sampling_perf", "test");
        r.push(
            Row::new("support=256")
                .with("alias_draws_per_sec", alias)
                .with("cdf_draws_per_sec", cdf)
                .with("alias_speedup", alias / cdf),
        );
        r.push(Row::new("worlds").with("block_worlds_per_sec", block));
        Json::parse(&r.to_json()).expect("report JSON parses")
    }

    #[test]
    fn identical_reports_pass_the_diff() {
        let base = report_json(8e7, 2e7, 1e5);
        assert!(diff_reports(&base, &base, &DiffTolerance::default()).is_empty());
    }

    #[test]
    fn wobble_within_tolerance_passes() {
        let base = report_json(8e7, 2e7, 1e5);
        let current = report_json(4e7, 1e7, 0.5e5);
        assert!(diff_reports(&base, &current, &DiffTolerance::default()).is_empty());
    }

    #[test]
    fn throughput_collapse_is_flagged() {
        let base = report_json(8e7, 2e7, 1e5);
        let current = report_json(8e6, 2e7, 1e5);
        let findings = diff_reports(&base, &current, &DiffTolerance::default());
        assert!(
            findings.iter().any(|f| f.contains("support=256/alias_draws_per_sec")),
            "findings: {findings:?}"
        );
    }

    #[test]
    fn losing_the_top_support_speedup_is_flagged_absolutely() {
        let base = report_json(8e7, 2e7, 1e5);
        // Current run: alias barely faster than CDF everywhere (speedup 1.05
        // < the 1.2 floor), even though the relative factor-2 tolerance on
        // the ratio would let it slide.
        let current = report_json(2.1e7, 2e7, 1e5);
        let findings = diff_reports(&base, &current, &DiffTolerance::default());
        assert!(
            findings.iter().any(|f| f.contains("absolute floor")),
            "findings: {findings:?}"
        );
    }

    #[test]
    fn missing_rows_and_metrics_are_flagged() {
        let base = report_json(8e7, 2e7, 1e5);
        let mut current = ExperimentReport::new("sampling_perf", "test");
        current.push(Row::new("support=256").with("alias_draws_per_sec", 8e7));
        let current = Json::parse(&current.to_json()).unwrap();
        let findings = diff_reports(&base, &current, &DiffTolerance::default());
        assert!(findings.iter().any(|f| f.contains("row 'worlds' missing")));
        assert!(findings.iter().any(|f| f.contains("cdf_draws_per_sec missing")));
    }
}
