//! The parallel, stampede-free model-preparation ("TS") subsystem.
//!
//! The forward–backward adaptation of Section 5.2 dominates query time (the
//! fig06 runs spend ~100 ms adapting 150 objects vs ~5 ms sampling), and each
//! object's adaptation is independent of every other object's — the phase is
//! embarrassingly parallel. This module provides the two pieces the engine
//! builds on:
//!
//! * [`AdaptationCache`] — a sharded cache of a-posteriori models whose
//!   per-object slots guarantee that every adaptation runs **exactly once**,
//!   even when many threads miss on the same object concurrently. A miss
//!   claims the slot; later arrivals block on the claiming thread's result
//!   instead of recomputing (the classic anti-stampede discipline, in contrast
//!   to the old check-then-recompute under separate `RwLock` acquisitions).
//! * [`adapt_batch`] — a batched fan-out that partitions cold object ids
//!   across [`std::thread::scope`] workers. With
//!   [`EngineConfig::adaptation_threads`](crate::EngineConfig) set to `1` the
//!   fan-out degenerates to the exact serial loop the engine used before, so
//!   results are bit-for-bit identical; any other thread count produces the
//!   same models too (adaptation is deterministic per object), just faster.
//!
//! This module deliberately uses `std::sync::{Mutex, Condvar}` rather than the
//! workspace's `parking_lot` shim: blocking waiters on the claimant's result
//! needs a condition variable, which the shim does not provide.

use crate::engine::AdaptedModels;
use crate::govern::{BudgetGauge, QueryPhase};
use crate::query::QueryError;
use crate::ObjectId;
use rustc_hash::FxHashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;
use ust_markov::AdaptedModel;

/// Number of independent shards of an [`AdaptationCache`]. A power of two so
/// shard selection is a mask; 16 shards keep lock contention negligible for
/// any realistic `adaptation_threads` while costing only a few hundred bytes.
const NUM_SHARDS: usize = 16;

/// State of one per-object cache slot.
enum Slot {
    /// A thread has claimed the slot and is running the adaptation; waiters
    /// block on the shard's condition variable until it completes.
    InFlight,
    /// The adaptation succeeded.
    Ready(std::sync::Arc<AdaptedModel>),
    /// The adaptation failed. The database is immutable for the engine's
    /// lifetime, so the error is deterministic and can be cached like a
    /// success (retrying could not produce a different outcome).
    Failed(QueryError),
}

/// One shard: a map of object slots plus the condition variable in-flight
/// waiters block on.
#[derive(Default)]
struct Shard {
    slots: Mutex<FxHashMap<ObjectId, Slot>>,
    ready: Condvar,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, FxHashMap<ObjectId, Slot>> {
        // The map's invariants hold even if a panic unwinds mid-update (the
        // claim guard below repairs in-flight slots), so poison is harmless.
        self.slots.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Removes the `InFlight` claim again if the adaptation closure panics, so
/// waiters wake up and retry instead of deadlocking on a slot that will never
/// complete.
struct ClaimGuard<'a> {
    shard: &'a Shard,
    id: ObjectId,
    armed: bool,
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.shard.lock().remove(&self.id);
            self.shard.ready.notify_all();
        }
    }
}

/// Lifetime counters of an [`AdaptationCache`], exposed for tests and
/// benchmark reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from an already-adapted model.
    pub hits: u64,
    /// Adaptations actually executed (each object counts once, no matter how
    /// many threads raced on it).
    pub cold_adaptations: u64,
    /// Models currently cached.
    pub cached_models: usize,
    /// Cached *failure* slots. Errors are cached like successes (they are
    /// deterministic for an immutable database) and are excluded from
    /// `cached_models`, so this counter is the only way to observe their
    /// memory footprint; `clear()` drops them together with the models.
    pub cached_failures: usize,
}

/// A sharded, stampede-free cache of adapted (a-posteriori) models.
///
/// Concurrent misses on the same object id are serialised through a per-slot
/// claim: the first thread adapts, everyone else blocks on the result. Misses
/// on *different* objects proceed in parallel (different slots, and usually
/// different shards).
pub struct AdaptationCache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    cold: AtomicU64,
}

impl Default for AdaptationCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for AdaptationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptationCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl AdaptationCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        AdaptationCache {
            shards: (0..NUM_SHARDS).map(|_| Shard::default()).collect(),
            hits: AtomicU64::new(0),
            cold: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, id: ObjectId) -> &Shard {
        let mut hasher = rustc_hash::FxHasher::default();
        id.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) & (NUM_SHARDS - 1)]
    }

    /// Non-blocking lookup: the model if it is already adapted, `None` if the
    /// slot is empty, in flight, or failed.
    pub fn peek(&self, id: ObjectId) -> Option<std::sync::Arc<AdaptedModel>> {
        match self.shard_for(id).lock().get(&id) {
            Some(Slot::Ready(m)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(m.clone())
            }
            _ => None,
        }
    }

    /// Returns the cached model of `id`, running `adapt` to produce it if no
    /// thread has yet. The boolean is `true` iff *this* call executed the
    /// adaptation (a "cold" miss); callers that lose the race to another
    /// thread block until that thread finishes and get `false`.
    pub fn get_or_adapt(
        &self,
        id: ObjectId,
        adapt: impl FnOnce() -> Result<AdaptedModel, QueryError>,
    ) -> Result<(std::sync::Arc<AdaptedModel>, bool), QueryError> {
        let shard = self.shard_for(id);
        let mut slots = shard.lock();
        loop {
            match slots.get(&id) {
                Some(Slot::Ready(m)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((m.clone(), false));
                }
                Some(Slot::Failed(e)) => return Err(e.clone()),
                Some(Slot::InFlight) => {
                    slots = shard.ready.wait(slots).unwrap_or_else(|e| e.into_inner());
                }
                None => break,
            }
        }
        // Claim the slot, then adapt *outside* the lock so other objects of
        // the same shard are not serialised behind this adaptation.
        slots.insert(id, Slot::InFlight);
        drop(slots);
        let mut guard = ClaimGuard { shard, id, armed: true };
        let result = adapt();
        guard.armed = false;
        let mut slots = shard.lock();
        let out = match result {
            Ok(model) => {
                self.cold.fetch_add(1, Ordering::Relaxed);
                let model = std::sync::Arc::new(model);
                slots.insert(id, Slot::Ready(model.clone()));
                Ok((model, true))
            }
            Err(error) if error.is_transient() => {
                // Budget breaches are tied to one evaluation's deadline or
                // token, not to the (immutable) data: caching one would
                // poison every later query with a healthier budget. Release
                // the claim instead, like the panic guard does.
                slots.remove(&id);
                Err(error)
            }
            Err(error) => {
                slots.insert(id, Slot::Failed(error.clone()));
                Err(error)
            }
        };
        drop(slots);
        shard.ready.notify_all();
        out
    }

    /// All successfully adapted models currently cached, sorted by object id.
    /// This is the persistence hand-off: the pairs go straight into the
    /// MODELS section of an on-disk store, and the sort makes the listing
    /// deterministic across the sharded hash maps.
    pub fn snapshot_models(&self) -> Vec<(ObjectId, std::sync::Arc<AdaptedModel>)> {
        let mut out: Vec<(ObjectId, std::sync::Arc<AdaptedModel>)> = Vec::new();
        for shard in &self.shards {
            for (&id, slot) in shard.lock().iter() {
                if let Slot::Ready(model) = slot {
                    out.push((id, model.clone()));
                }
            }
        }
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// Seeds the cache with already-adapted models (the load half of the
    /// persistence hand-off). Preloaded slots behave exactly like slots this
    /// cache adapted itself — later lookups are warm hits — but preloading
    /// bumps neither the hit nor the cold-adaptation counters: the stats keep
    /// describing work done *through* this cache. An id that is already
    /// resident (any slot state) is left untouched; the exactly-once claim
    /// discipline owns it.
    pub fn preload(
        &self,
        models: impl IntoIterator<Item = (ObjectId, std::sync::Arc<AdaptedModel>)>,
    ) {
        for (id, model) in models {
            let shard = self.shard_for(id);
            let mut slots = shard.lock();
            slots.entry(id).or_insert(Slot::Ready(model));
        }
    }

    /// Number of successfully adapted models currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().values().filter(|v| matches!(v, Slot::Ready(_))).count())
            .sum()
    }

    /// Whether no model is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards every completed slot (successes and cached failures). Slots
    /// that are currently in flight are kept so the exactly-once guarantee is
    /// not voided mid-adaptation; the claimant's completion re-inserts them.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().retain(|_, slot| matches!(slot, Slot::InFlight));
        }
    }

    /// Lifetime hit/miss counters plus the current cache size.
    pub fn stats(&self) -> CacheStats {
        let mut cached_models = 0;
        let mut cached_failures = 0;
        for shard in &self.shards {
            for slot in shard.lock().values() {
                match slot {
                    Slot::Ready(_) => cached_models += 1,
                    Slot::Failed(_) => cached_failures += 1,
                    Slot::InFlight => {}
                }
            }
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            cold_adaptations: self.cold.load(Ordering::Relaxed),
            cached_models,
            cached_failures,
        }
    }
}

/// The workspace's one implementation of the chunked ordered fan-out lives in
/// [`ust_index::par`] (the UST-tree build shards through it too); the TS
/// phase ([`adapt_batch`]), the PCNN per-candidate runs and the bench
/// harness's per-object loops all re-use it through this re-export.
pub use ust_index::par::parallel_map_ordered;

/// Resolves a configured [`adaptation_threads`](crate::EngineConfig) value:
/// `0` means "use the machine's available parallelism".
pub fn resolve_adaptation_threads(configured: usize) -> usize {
    ust_index::par::resolve_threads(configured)
}

/// Adapts a batch of (cold) object ids through the cache, fanning the work out
/// across at most `threads` scoped workers via [`parallel_map_ordered`].
pub fn adapt_batch<F>(
    cache: &AdaptationCache,
    ids: &[ObjectId],
    threads: usize,
    adapt: F,
) -> Vec<Result<(std::sync::Arc<AdaptedModel>, bool), QueryError>>
where
    F: Fn(ObjectId) -> Result<AdaptedModel, QueryError> + Sync,
{
    parallel_map_ordered(ids, threads, |&id| cache.get_or_adapt(id, || adapt(id)))
}

/// [`adapt_batch`] under a [`QueryBudget`](crate::govern::QueryBudget):
/// every worker polls the gauge *before* each adaptation. One adaptation is
/// a coarse unit of work (a full forward–backward run), so the per-item poll
/// is both cheap and the natural deterministic checkpoint granularity of
/// this phase. The poll happens outside [`AdaptationCache::get_or_adapt`],
/// so a breach can never be mistaken for a per-object failure and cached.
pub fn adapt_batch_governed<F>(
    cache: &AdaptationCache,
    ids: &[ObjectId],
    threads: usize,
    adapt: F,
    gauge: &BudgetGauge,
) -> Vec<Result<(std::sync::Arc<AdaptedModel>, bool), QueryError>>
where
    F: Fn(ObjectId) -> Result<AdaptedModel, QueryError> + Sync,
{
    parallel_map_ordered(ids, threads, |&id| {
        gauge.check(QueryPhase::Adaptation)?;
        cache.get_or_adapt(id, || adapt(id))
    })
}

/// Outcome of a [`QueryEngine::prepare_objects`](crate::QueryEngine) call: the
/// working set of adapted models handed to the samplers, plus the TS-phase
/// accounting that [`QueryStats`](crate::QueryStats) reports.
#[derive(Debug, Clone)]
pub struct PrepareOutcome {
    /// The adapted models, in the requested object order.
    pub models: AdaptedModels,
    /// Objects answered from the cache (no adaptation work done).
    pub cache_hits: usize,
    /// Objects whose forward–backward adaptation actually ran during this
    /// call. Under concurrency, objects adapted by *another* thread while this
    /// call waited count as hits, not cold adaptations.
    pub cold_adaptations: usize,
    /// Wall-clock time of the cold fan-out only. Warm lookups cost hash-map
    /// reads, not TS work, and are excluded — `Duration::ZERO` on a fully
    /// warm cache. If a *concurrent* query claimed some of the requested
    /// slots first, the time this call spent blocking on those in-flight
    /// adaptations is included (the query really did wait that long for its
    /// TS phase), even though the work is billed to the other call's
    /// `cold_adaptations` — so summing `cold_time` across concurrent queries
    /// can count a shared adaptation twice.
    pub cold_time: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use ust_markov::{CsrMatrix, MarkovModel};

    fn toy_model() -> MarkovModel {
        MarkovModel::homogeneous(CsrMatrix::from_rows(vec![
            vec![(0, 0.5), (1, 0.5)],
            vec![(0, 0.5), (1, 0.5)],
        ]))
    }

    fn toy_adapt() -> Result<AdaptedModel, QueryError> {
        AdaptedModel::build(&toy_model(), &[(0, 0), (2, 1)])
            .map_err(|error| QueryError::Adaptation { object: 0, error })
    }

    #[test]
    fn hit_after_miss_and_stats() {
        let cache = AdaptationCache::new();
        assert!(cache.is_empty());
        let (_, cold) = cache.get_or_adapt(7, toy_adapt).unwrap();
        assert!(cold);
        let (_, cold) = cache.get_or_adapt(7, || panic!("must not re-adapt")).unwrap();
        assert!(!cold);
        assert!(cache.peek(7).is_some());
        assert!(cache.peek(8).is_none());
        let stats = cache.stats();
        assert_eq!(stats.cold_adaptations, 1);
        assert_eq!(stats.hits, 2, "one get_or_adapt hit plus one peek hit");
        assert_eq!(stats.cached_models, 1);
        cache.clear();
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn failures_are_cached_and_cloned_to_later_callers() {
        let cache = AdaptationCache::new();
        let err = QueryError::UnknownObject { object: 3 };
        let calls = AtomicUsize::new(0);
        let attempt = || {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(err.clone())
        };
        assert_eq!(cache.get_or_adapt(3, attempt).unwrap_err(), err);
        assert_eq!(cache.get_or_adapt(3, attempt).unwrap_err(), err);
        assert_eq!(calls.load(Ordering::SeqCst), 1, "the failure is cached");
        assert_eq!(cache.len(), 0, "failed slots are not counted as models");
        assert_eq!(cache.stats().cached_failures, 1, "but they are observable");
        cache.clear();
        assert_eq!(cache.stats().cached_failures, 0);
        assert_eq!(cache.get_or_adapt(3, attempt).unwrap_err(), err);
        assert_eq!(calls.load(Ordering::SeqCst), 2, "clear() also drops failures");
    }

    #[test]
    fn concurrent_misses_adapt_exactly_once() {
        let cache = AdaptationCache::new();
        let executions = AtomicUsize::new(0);
        let n = 8;
        let barrier = Barrier::new(n);
        std::thread::scope(|scope| {
            for _ in 0..n {
                scope.spawn(|| {
                    barrier.wait();
                    let (model, _) = cache
                        .get_or_adapt(42, || {
                            executions.fetch_add(1, Ordering::SeqCst);
                            toy_adapt()
                        })
                        .unwrap();
                    assert_eq!(model.start(), 0);
                });
            }
        });
        assert_eq!(executions.load(Ordering::SeqCst), 1, "stampede: adaptation duplicated");
        assert_eq!(cache.stats().cold_adaptations, 1);
        assert_eq!(cache.stats().hits, n as u64 - 1);
    }

    #[test]
    fn panicking_adaptation_releases_the_claim() {
        let cache = AdaptationCache::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cache.get_or_adapt(5, || panic!("boom"));
        }));
        assert!(caught.is_err());
        // The slot must be claimable again, not wedged in flight.
        let (_, cold) = cache.get_or_adapt(5, toy_adapt).unwrap();
        assert!(cold);
    }

    #[test]
    fn adapt_batch_is_ordered_and_exactly_once_per_id() {
        let cache = AdaptationCache::new();
        let executions = AtomicUsize::new(0);
        let ids: Vec<ObjectId> = (0..64).collect();
        for threads in [1usize, 4] {
            let results = adapt_batch(&cache, &ids, threads, |_| {
                executions.fetch_add(1, Ordering::SeqCst);
                toy_adapt()
            });
            assert_eq!(results.len(), ids.len());
            for r in &results {
                assert!(r.is_ok());
            }
        }
        assert_eq!(executions.load(Ordering::SeqCst), 64, "second sweep was fully warm");
    }

    #[test]
    fn transient_errors_are_not_cached_and_release_the_claim() {
        let cache = AdaptationCache::new();
        let budget_err = QueryError::Cancelled {
            phase: crate::govern::QueryPhase::Adaptation,
            stats: Box::default(),
        };
        assert!(budget_err.is_transient());
        let err = cache.get_or_adapt(9, || Err(budget_err.clone())).unwrap_err();
        assert_eq!(err, budget_err);
        assert_eq!(cache.stats().cached_failures, 0, "budget errors must not poison the cache");
        // The slot is claimable again and a healthy retry succeeds.
        let (_, cold) = cache.get_or_adapt(9, toy_adapt).unwrap();
        assert!(cold);
    }

    #[test]
    fn governed_batch_cancels_deterministically_and_caches_nothing() {
        use crate::govern::{CancelToken, QueryBudget};
        let ids: Vec<ObjectId> = (0..32).collect();
        for threads in [1usize, 2, 4] {
            let cache = AdaptationCache::new();
            let token = CancelToken::new();
            token.cancel();
            let gauge = QueryBudget::unlimited().with_cancel(&token).start();
            let results = adapt_batch_governed(&cache, &ids, threads, |_| toy_adapt(), &gauge);
            assert_eq!(results.len(), ids.len());
            for r in results {
                assert!(matches!(
                    r.unwrap_err(),
                    QueryError::Cancelled { phase: QueryPhase::Adaptation, .. }
                ));
            }
            let stats = cache.stats();
            assert_eq!(stats.cold_adaptations, 0, "no adaptation may run after cancel");
            assert_eq!(stats.cached_failures, 0);
            assert_eq!(stats.cached_models, 0);
        }
    }

    #[test]
    fn resolve_threads_maps_zero_to_available_parallelism() {
        // Thin delegation to `ust_index::par::resolve_threads`, which has the
        // full edge-case coverage.
        assert!(resolve_adaptation_threads(0) >= 1);
        assert_eq!(resolve_adaptation_threads(3), 3);
    }
}
