//! Micro-benchmark: forward-backward model adaptation (Algorithm 2).
//!
//! Compares the production sparse implementation against the literal dense
//! transcription of the paper's pseudo-code (the `O(|T| · |S|²)` formulation),
//! measures the sparse adaptation on a realistic synthetic network object, and
//! measures the full-database TS phase (`QueryEngine::prepare_all`) across the
//! `adaptation_threads` axis — the speedup of the parallel fan-out over the
//! serial loop on the fig06/quickstart scale (150 objects).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ust_bench::datasets::{build_synthetic, ScaleParams};
use ust_bench::RunScale;
use ust_core::{EngineConfig, QueryEngine};
use ust_generator::{ObjectWorkloadConfig, SyntheticNetworkConfig};
use ust_markov::dense::{adapt_dense, DenseMatrix};
use ust_markov::{AdaptedModel, CsrMatrix, MarkovModel, StateId};

/// A ring chain of `n` states with stay/forward/backward moves.
fn ring(n: usize) -> (CsrMatrix, DenseMatrix) {
    let mut dense = DenseMatrix::zeros(n);
    let mut rows: Vec<Vec<(StateId, f64)>> = Vec::with_capacity(n);
    for i in 0..n {
        let fwd = (i + 1) % n;
        let bwd = (i + n - 1) % n;
        dense.set(i, fwd, 0.5);
        dense.set(i, i, 0.3);
        dense.set(i, bwd, 0.2);
        rows.push(vec![(fwd as StateId, 0.5), (i as StateId, 0.3), (bwd as StateId, 0.2)]);
    }
    (CsrMatrix::from_rows(rows), dense)
}

fn bench_sparse_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptation_sparse_vs_dense");
    for n in [50usize, 200] {
        let (sparse, dense) = ring(n);
        let model = MarkovModel::homogeneous(sparse);
        // The ring advances at most one state per tic, so the intermediate
        // observation must stay within 20 steps of both endpoints.
        let obs = vec![(0u32, 0u32), (20, 10), (40, 0)];
        group.bench_function(format!("sparse_{n}_states"), |b| {
            b.iter(|| AdaptedModel::build(&model, &obs).expect("consistent"))
        });
        group.bench_function(format!("dense_{n}_states"), |b| {
            b.iter(|| adapt_dense(&dense, &obs).expect("consistent"))
        });
    }
    group.finish();
}

fn bench_synthetic_object(c: &mut Criterion) {
    let network = SyntheticNetworkConfig { num_states: 5_000, branching_factor: 8.0, seed: 1 }
        .generate();
    let model = network.distance_weighted_model(1.0);
    let objects = ust_generator::objects::generate_objects(
        &network,
        &ObjectWorkloadConfig {
            num_objects: 8,
            lifetime: 100,
            horizon: 200,
            observation_interval: 10,
            lag: 0.5,
            standing_fraction: 0.0,
            seed: 2,
        },
        0,
    );
    let mut group = c.benchmark_group("adaptation_synthetic");
    group.sample_size(20);
    group.bench_function("adapt_one_object_5k_states", |b| {
        b.iter_batched(
            || objects[0].object.observation_pairs(),
            |obs| AdaptedModel::build(&model, &obs).expect("consistent"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_prepare_all_threads(c: &mut Criterion) {
    // The fig06 default / quickstart scale: 2 000 states, 150 objects.
    let params = ScaleParams::for_scale(RunScale::Quick);
    let dataset = build_synthetic(&params, 2_000, params.branching, 150, 1);
    let mut group = c.benchmark_group("adaptation_prepare_all");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let engine = QueryEngine::new(
            &dataset.database,
            // No UST-tree: this benchmark isolates the TS phase.
            EngineConfig { use_index: false, adaptation_threads: threads, ..Default::default() },
        );
        group.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                engine.clear_model_cache();
                engine.prepare_all().expect("adaptation succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sparse_vs_dense, bench_synthetic_object, bench_prepare_all_threads);
criterion_main!(benches);
