//! Figure 7: P∀NNQ / P∃NNQ efficiency while varying the branching factor `b`.
//!
//! Paper sweep: b ∈ {6, 8, 10} (identical here). Reported series: TS/FA/EX
//! CPU times and candidate/influence set sizes.

use ust_bench::datasets::{build_queries, build_synthetic, ScaleParams};
use ust_bench::efficiency::measure_efficiency;
use ust_bench::{ExperimentReport, Row, RunSettings};
use ust_core::prepare::resolve_adaptation_threads;

fn main() {
    let settings = RunSettings::from_env();
    settings.reject_ingest_flags("fig07_vary_branching");
    settings.reject_store_flag("fig07_vary_branching");
    settings.reject_wal_flags("fig07_vary_branching");
    settings.reject_deadline_flag("fig07_vary_branching");
    let params = ScaleParams::for_scale(settings.scale);
    // The paper's TS series is a *serial* adaptation time, so this figure
    // defaults to one TS worker for comparability across machines; parallel
    // adaptation is opt-in via `--threads N` (`0` = available parallelism),
    // recorded in the report meta. fig06 reports the serial/parallel split
    // explicitly.
    let threads = settings.adaptation_threads.map_or(1, resolve_adaptation_threads);
    let mut report = ExperimentReport::new(
        "figure07_vary_branching",
        "Efficiency of P∀NNQ/P∃NNQ while varying the branching factor b \
         (paper: Figure 7; series TS/FA/EX in seconds, |C(q)|/|I(q)| in objects)",
    )
    .with_meta("adaptation_threads", threads as f64);
    for b in [6.0, 8.0, 10.0] {
        eprintln!("[fig07] b = {b}");
        let dataset =
            build_synthetic(&params, params.num_states, b, params.num_objects, settings.seed);
        let queries = build_queries(&dataset, &params, settings.seed);
        let m = measure_efficiency(&dataset, &queries, params.num_samples, settings.seed, threads);
        report.push(
            Row::new(format!("b={b}"))
                .with("TS", m.ts_seconds)
                .with("FA", m.fa_seconds)
                .with("EX", m.ex_seconds)
                .with("|C(q)|", m.candidates)
                .with("|I(q)|", m.influencers),
        );
    }
    report.print();
    report.maybe_write_json(&settings.json_path).expect("failed to write JSON report");
}
