//! An exhaustive-interleaving model checker (a "mini-loom") for the
//! `AdaptationCache` per-slot claim/wait/release protocol in
//! `ust_core::prepare::get_or_adapt`.
//!
//! # Abstraction
//!
//! The checker does not run real threads. Each model thread is a small state
//! machine whose steps are the protocol's *critical sections*: every
//! lock-protected region of the real code (check-and-branch, publish,
//! panic-release) collapses to one atomic model step, which is sound because
//! no other thread can observe intermediate states of a region executed under
//! the shard mutex. The lock itself therefore vanishes from the model state —
//! what remains is the shared slot, the condvar wait-set, and each thread's
//! program counter:
//!
//! ```text
//! Lookup ── slot Ready ────────────────────────────▶ Done (cache hit)
//!    │ ──── slot InFlight ──▶ Waiting ──(notify)──▶ Lookup (retry loop)
//!    │ ──── slot Empty: claim (slot ≔ InFlight) ──▶ Adapt
//! Adapt ─── ok ──▶ Publish (slot ≔ Ready) ──▶ Notify ──▶ Done
//!    └───── panic ▶ PanicRelease (slot ≔ Empty) ──▶ PanicNotify ──▶ Dead
//! ```
//!
//! `Waiting` models `Condvar::wait`: joining the wait-set is atomic with the
//! in-flight check (exactly the real code, where the slot is re-examined and
//! `wait` is entered under one lock acquisition), and `notify_all` moves every
//! waiter back to `Lookup`. Spurious wakeups are deliberately *not* modelled:
//! the protocol must not rely on them, and proving liveness without them is
//! the stronger claim. `adapt()` runs outside the lock, so `Adapt` is its own
//! lock-free step that interleaves with everything.
//!
//! A *faulty* thread panics inside its adaptation closure (the
//! `ClaimGuard` unwind path); a faulty thread that never claims — because it
//! hit a `Ready` slot — completes normally, like the real closure that is
//! simply not invoked on a warm hit. The `Failed`-slot path is not modelled
//! separately: publishing an error is step-for-step the same protocol as
//! publishing a model, only the payload differs.
//!
//! # Checked properties
//!
//! Explored exhaustively over *all* interleavings of up to [`MAX_THREADS`]
//! threads (DFS over enabled steps; every maximal schedule is one leaf):
//!
//! * **exactly-once** — the adaptation closure never runs concurrently with
//!   itself, never re-runs after a success, and succeeds at most once;
//! * **no lost wakeup** — no reachable state has a thread parked in the
//!   wait-set with nobody left to notify it (deadlock freedom);
//! * **completion** — every non-faulty thread terminates holding the model,
//!   and the slot ends `Ready` iff some thread succeeded.
//!
//! # Mutations
//!
//! To show the checker is not vacuously green, [`Mutation`] re-introduces
//! three historic bugs; each must produce violations (asserted by tests):
//! [`Mutation::SplitCheckClaim`] (the pre-claim check-then-recompute race),
//! [`Mutation::SkipPublishNotify`] and [`Mutation::SkipPanicNotify`] (lost
//! wakeups on the success and unwind paths).

/// Upper bound on model threads. Three is enough to exercise every role
/// combination (claimant, waiter, late arrival) at once, and keeps the full
/// schedule space small enough to enumerate in milliseconds.
pub const MAX_THREADS: usize = 3;

/// Per-thread program counter over the protocol's atomic steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pc {
    /// Acquire the shard lock, branch on the slot (hit / wait / claim).
    Lookup,
    /// Parked in the condvar wait-set; only `notify_all` re-enables.
    Waiting,
    /// Passed the empty check; claims in a *separate* step (mutation only).
    Claim,
    /// Running the adaptation closure, outside the lock.
    Adapt,
    /// Acquire the lock, install `Ready`, release.
    Publish,
    /// `notify_all` after a successful publish.
    Notify,
    /// `ClaimGuard::drop`: acquire the lock, remove the claim, release.
    PanicRelease,
    /// `notify_all` from the guard's unwind path.
    PanicNotify,
    /// Returned with the model.
    Done,
    /// Unwound out of `get_or_adapt`.
    Dead,
}

/// The shared per-object slot, as other threads can observe it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Empty,
    InFlight,
    Ready,
}

/// A protocol variant: the faithful abstraction or a deliberately broken
/// mutant used to prove the checker catches real bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// The protocol as implemented in `ust_core::prepare`.
    Faithful,
    /// The slot check and the claim happen under *separate* lock
    /// acquisitions — the classic check-then-recompute stampede the claim
    /// discipline replaced. Expected violation: concurrent/duplicate
    /// adaptation.
    SplitCheckClaim,
    /// The success path forgets `notify_all`. Expected violation: waiters
    /// deadlock (lost wakeup).
    SkipPublishNotify,
    /// The panic-unwind path forgets `notify_all`. Expected violation:
    /// waiters deadlock after a claimant dies.
    SkipPanicNotify,
}

/// One explored global state. Small and `Copy`-cheap on purpose: DFS clones
/// it at every branch.
#[derive(Debug, Clone)]
struct State {
    pc: [Pc; MAX_THREADS],
    got: [bool; MAX_THREADS],
    slot: SlotState,
    /// Times the adaptation closure started executing.
    started: u8,
    /// Times it unwound.
    panics: u8,
    /// Times it published a model.
    succeeded: u8,
}

/// Result of exploring one configuration's full schedule space.
#[derive(Debug, Clone)]
pub struct ModelReport {
    /// Number of model threads.
    pub threads: usize,
    /// Bitmask of faulty threads (bit `t` = thread `t` panics in `adapt`).
    pub faulty_mask: u32,
    /// Protocol variant explored.
    pub mutation: Mutation,
    /// Maximal schedules (leaves of the interleaving tree) explored.
    pub schedules: u64,
    /// Property violations found, each with the schedule that triggers it
    /// (the recorded sample is capped; badly broken mutants would otherwise
    /// produce unbounded lists).
    pub violations: Vec<String>,
}

/// Cap on recorded violation strings; the count would otherwise be unbounded
/// for badly broken mutants.
const MAX_RECORDED: usize = 8;

impl ModelReport {
    /// Whether the full schedule space was explored without violations.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exhaustively explores every interleaving of `threads` model threads
/// (`1..=MAX_THREADS`) with the given faulty set against `mutation`.
pub fn explore(threads: usize, faulty_mask: u32, mutation: Mutation) -> ModelReport {
    assert!(
        (1..=MAX_THREADS).contains(&threads),
        "model supports 1..={MAX_THREADS} threads"
    );
    let mut report = ModelReport {
        threads,
        faulty_mask,
        mutation,
        schedules: 0,
        violations: Vec::new(),
    };
    let state = State {
        pc: [Pc::Lookup; MAX_THREADS],
        got: [false; MAX_THREADS],
        slot: SlotState::Empty,
        started: 0,
        panics: 0,
        succeeded: 0,
    };
    let mut trace = Vec::new();
    dfs(&state, threads, faulty_mask, mutation, &mut trace, &mut report);
    report
}

/// Explores the *faithful* protocol over every faulty subset of every thread
/// count up to `max_threads`, in deterministic order.
pub fn verify_protocol(max_threads: usize) -> Vec<ModelReport> {
    let mut out = Vec::new();
    for threads in 1..=max_threads.min(MAX_THREADS) {
        for mask in 0..(1u32 << threads) {
            out.push(explore(threads, mask, Mutation::Faithful));
        }
    }
    out
}

fn enabled(state: &State, t: usize) -> bool {
    !matches!(state.pc[t], Pc::Waiting | Pc::Done | Pc::Dead)
}

fn dfs(
    state: &State,
    threads: usize,
    faulty_mask: u32,
    mutation: Mutation,
    trace: &mut Vec<usize>,
    report: &mut ModelReport,
) {
    // Safety property checked at *every* state, not just leaves: the
    // adaptation closure must never run concurrently with itself.
    let adapting = (0..threads).filter(|&t| state.pc[t] == Pc::Adapt).count();
    if adapting > 1 {
        report.schedules += 1;
        record(report, format!("concurrent adaptation ({adapting} threads) after {trace:?}"));
        return; // the branch is already broken; counting deeper leaves adds noise
    }

    let runnable: Vec<usize> = (0..threads).filter(|&t| enabled(state, t)).collect();
    if runnable.is_empty() {
        report.schedules += 1;
        check_terminal(state, threads, faulty_mask, trace, report);
        return;
    }
    for &t in &runnable {
        let mut next = state.clone();
        step(&mut next, t, faulty_mask, mutation);
        trace.push(t);
        dfs(&next, threads, faulty_mask, mutation, trace, report);
        trace.pop();
    }
}

/// Executes thread `t`'s next atomic step.
fn step(state: &mut State, t: usize, faulty_mask: u32, mutation: Mutation) {
    let faulty = faulty_mask & (1 << t) != 0;
    state.pc[t] = match state.pc[t] {
        Pc::Lookup => match state.slot {
            SlotState::Ready => {
                state.got[t] = true;
                Pc::Done
            }
            SlotState::InFlight => Pc::Waiting,
            SlotState::Empty => {
                if mutation == Mutation::SplitCheckClaim {
                    // Broken variant: the claim happens under a second lock
                    // acquisition, leaving a window for a racing claim.
                    Pc::Claim
                } else {
                    state.slot = SlotState::InFlight;
                    Pc::Adapt
                }
            }
        },
        Pc::Claim => {
            state.slot = SlotState::InFlight;
            Pc::Adapt
        }
        Pc::Adapt => {
            state.started += 1;
            if faulty {
                state.panics += 1;
                Pc::PanicRelease
            } else {
                Pc::Publish
            }
        }
        Pc::Publish => {
            state.slot = SlotState::Ready;
            state.succeeded += 1;
            state.got[t] = true;
            if mutation == Mutation::SkipPublishNotify {
                Pc::Done
            } else {
                Pc::Notify
            }
        }
        Pc::Notify => {
            wake_all(state);
            Pc::Done
        }
        Pc::PanicRelease => {
            // `ClaimGuard::drop` removes the slot entry unconditionally.
            state.slot = SlotState::Empty;
            if mutation == Mutation::SkipPanicNotify {
                Pc::Dead
            } else {
                Pc::PanicNotify
            }
        }
        Pc::PanicNotify => {
            wake_all(state);
            Pc::Dead
        }
        Pc::Waiting | Pc::Done | Pc::Dead => unreachable!("never scheduled"),
    };
}

fn wake_all(state: &mut State) {
    for pc in &mut state.pc {
        if *pc == Pc::Waiting {
            *pc = Pc::Lookup;
        }
    }
}

/// Asserts the terminal-state properties of one maximal schedule.
fn check_terminal(
    state: &State,
    threads: usize,
    faulty_mask: u32,
    trace: &[usize],
    report: &mut ModelReport,
) {
    let mut fail = |message: String| record(report, format!("{message} after {trace:?}"));

    if (0..threads).any(|t| state.pc[t] == Pc::Waiting) {
        fail("lost wakeup: thread(s) parked forever".to_string());
        return; // the remaining properties are meaningless in a wedged state
    }
    if state.succeeded > 1 {
        fail(format!("adaptation succeeded {} times (exactly-once violated)", state.succeeded));
    }
    if state.started != state.panics + state.succeeded {
        fail(format!(
            "{} adaptations started but {} completed (lost or duplicated work)",
            state.started,
            state.panics + state.succeeded
        ));
    }
    let any_healthy = (0..threads).any(|t| faulty_mask & (1 << t) == 0);
    if any_healthy && state.succeeded != 1 {
        fail(format!(
            "a healthy thread existed but the adaptation succeeded {} times",
            state.succeeded
        ));
    }
    let slot_matches = (state.slot == SlotState::Ready) == (state.succeeded == 1);
    if !slot_matches {
        fail(format!(
            "terminal slot {:?} inconsistent with {} successes",
            state.slot, state.succeeded
        ));
    }
    for t in 0..threads {
        let faulty = faulty_mask & (1 << t) != 0;
        match state.pc[t] {
            Pc::Done if !state.got[t] => {
                fail(format!("thread {t} returned without the model"));
            }
            Pc::Dead if !faulty => {
                fail(format!("healthy thread {t} unwound"));
            }
            Pc::Done | Pc::Dead => {}
            other => fail(format!("thread {t} finished in non-terminal state {other:?}")),
        }
    }
}

fn record(report: &mut ModelReport, message: String) {
    if report.violations.len() < MAX_RECORDED {
        report.violations.push(message);
    } else if report.violations.len() == MAX_RECORDED {
        report.violations.push("… further violations elided".to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_has_one_schedule_per_outcome() {
        let healthy = explore(1, 0b0, Mutation::Faithful);
        assert!(healthy.clean(), "{:?}", healthy.violations);
        assert_eq!(healthy.schedules, 1, "Lookup→Adapt→Publish→Notify is the only order");
        let faulty = explore(1, 0b1, Mutation::Faithful);
        assert!(faulty.clean(), "{:?}", faulty.violations);
        assert_eq!(faulty.schedules, 1);
    }

    #[test]
    fn faithful_protocol_is_clean_at_every_config() {
        for report in verify_protocol(MAX_THREADS) {
            assert!(
                report.clean(),
                "threads={} faulty={:#b}: {:?}",
                report.threads,
                report.faulty_mask,
                report.violations
            );
            assert!(report.schedules >= 1);
        }
    }

    #[test]
    fn split_check_claim_reintroduces_the_stampede() {
        let report = explore(2, 0b00, Mutation::SplitCheckClaim);
        assert!(!report.clean(), "the check-then-claim race must be caught");
        // The race shows up both as a duplicated success and, on other
        // schedules, as two threads inside the closure at once; the recorded
        // sample (capped at MAX_RECORDED) must contain at least one form.
        assert!(
            report.violations.iter().any(|v| v.contains("concurrent adaptation")
                || v.contains("exactly-once violated")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn missing_notifies_are_caught_as_lost_wakeups() {
        let publish = explore(2, 0b00, Mutation::SkipPublishNotify);
        assert!(
            publish.violations.iter().any(|v| v.contains("lost wakeup")),
            "{:?}",
            publish.violations
        );
        let panic = explore(2, 0b01, Mutation::SkipPanicNotify);
        assert!(
            panic.violations.iter().any(|v| v.contains("lost wakeup")),
            "{:?}",
            panic.violations
        );
    }
}
